"""Theorem 4.1 machinery: poss(S) as a union of template representations.

Provides both sides of the theorem over a finite fact space so they can be
compared exactly:

* the *direct* side — enumerate databases and filter with the poss(S)
  predicate (:func:`repro.confidence.worlds.possible_worlds`);
* the *template* side — enumerate ∪_U rep(T^U(S)).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.model.database import GlobalDatabase
from repro.model.schema import GlobalSchema
from repro.sources.collection import SourceCollection
from repro.tableaux.construction import templates_for_collection
from repro.tableaux.template import union_of_reps


def template_possible_worlds(
    collection: SourceCollection,
    domain: Iterable,
    schema: Optional[GlobalSchema] = None,
    max_facts: Optional[int] = None,
) -> Set[GlobalDatabase]:
    """``∪_U rep(T^U(S))`` over the finite fact space of sch(S) × domain."""
    schema = schema if schema is not None else collection.schema()
    templates = [t for _, t in templates_for_collection(collection)]
    return union_of_reps(templates, domain, schema=schema, max_facts=max_facts)


def direct_possible_worlds(
    collection: SourceCollection,
    domain: Iterable,
    max_facts: Optional[int] = None,
) -> Set[GlobalDatabase]:
    """poss(S) over the finite fact space, via the defining predicate."""
    from repro.confidence.worlds import possible_worlds

    return set(possible_worlds(collection, domain, max_facts=max_facts))


def theorem41_holds(
    collection: SourceCollection,
    domain: Iterable,
    max_facts: Optional[int] = None,
) -> bool:
    """Check ``poss(S) == ∪_U rep(T^U(S))`` over the finite fact space."""
    return direct_possible_worlds(collection, domain, max_facts=max_facts) == (
        template_possible_worlds(collection, domain, max_facts=max_facts)
    )
