"""Tableaux over a global schema (Section 4).

A tableau is a finite set of atoms (possibly with variables). The key
operation is *embedding*: finding valuations σ with ``σ(U) ⊆ D`` — the
engine behind constraint satisfaction and ``rep(T)`` membership.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, FreshConstantFactory, Variable
from repro.model.valuation import Substitution, match_atom


class Tableau:
    """An immutable finite set of atoms, with embedding search.

    >>> from repro.model import atom, Variable
    >>> t = Tableau([atom("R", "a", Variable("x"))])
    >>> len(t)
    1
    """

    __slots__ = ("atoms", "_hash", "_core")

    def __init__(self, atoms: Iterable[Atom] = ()):
        self.atoms: FrozenSet[Atom] = frozenset(atoms)
        self._hash = hash(self.atoms)
        self._core = None

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Tableau) and self.atoms == other.atoms

    def __hash__(self) -> int:
        return self._hash

    def __or__(self, other: "Tableau") -> "Tableau":
        return Tableau(self.atoms | other.atoms)

    def variables(self) -> Set[Variable]:
        """All variables occurring in the tableau."""
        out: Set[Variable] = set()
        for atom in self.atoms:
            out |= atom.variables()
        return out

    def constants(self) -> Set[Constant]:
        """All constants occurring in the tableau."""
        out: Set[Constant] = set()
        for atom in self.atoms:
            out |= atom.constants()
        return out

    def substitute(self, substitution) -> "Tableau":
        """Apply a substitution/valuation to every atom."""
        return Tableau(a.substitute(substitution) for a in self.atoms)

    def is_ground(self) -> bool:
        """True when no atom contains a variable."""
        return all(a.is_ground() for a in self.atoms)

    def freeze(self, taken_constants: Iterable[Constant] = ()) -> Tuple["Tableau", Substitution]:
        """Replace each variable with a distinct fresh constant.

        Returns the frozen (ground) tableau and the freezing valuation.
        This builds the *canonical database* of the tableau, used by the
        consistency checker's fast path and by containment arguments.
        """
        factory = FreshConstantFactory(
            taken=set(self.constants()) | set(taken_constants), prefix="_frz"
        )
        freezing = Substitution({v: factory.fresh() for v in sorted(self.variables())})
        return self.substitute(freezing), freezing

    def embeddings(
        self, database: GlobalDatabase, seed: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """All valuations σ (over the tableau's variables) with σ(U) ⊆ D.

        Backtracking search ordered by most-constrained atom first. Atoms
        already ground simply require membership in the database.
        """
        atoms = sorted(self.atoms, key=lambda a: (-len(a.constants()), str(a)))
        yield from _embed(atoms, 0, database, seed if seed is not None else Substitution())

    def embeds_in(self, database: GlobalDatabase) -> bool:
        """Is there at least one embedding into *database*?

        Runs over the interned representation (:meth:`core` against
        ``database.core()``) — existence of an embedding is representation
        independent, and the integer search avoids building any intermediate
        atoms.
        """
        from repro.tableaux.core import core_embeds

        return core_embeds(self.core(), database.core())

    def core(self):
        """The interned form: a tuple of :class:`~repro.core.iatoms.IAtom`
        in most-constrained-first embedding order, cached per tableau.

        Interned against the process-wide symbol table; dropped on pickling
        since term IDs do not survive process boundaries.
        """
        if self._core is None:
            from repro.core.adapters import to_core_atom
            from repro.core.symbols import global_table

            table = global_table()
            ordered = sorted(
                self.atoms, key=lambda a: (-len(a.constants()), str(a))
            )
            self._core = tuple(to_core_atom(table, a) for a in ordered)
        return self._core

    def __getstate__(self):
        return (self.atoms,)

    def __setstate__(self, state):
        self.__init__(state[0])

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in sorted(self.atoms))
        return f"Tableau({{{inner}}})"


def _embed(
    atoms, index: int, database: GlobalDatabase, substitution: Substitution
) -> Iterator[Substitution]:
    if index == len(atoms):
        yield substitution
        return
    pattern = atoms[index].substitute(substitution)
    if pattern.is_ground():
        if pattern in database:
            yield from _embed(atoms, index + 1, database, substitution)
        return
    for candidate in database.extension(pattern.relation):
        extended = match_atom(pattern, candidate, substitution)
        if extended is not None:
            yield from _embed(atoms, index + 1, database, extended)
