"""Valuation enumeration and embedding over ID domains (the tableau hot path).

This module is the interned mirror of the tableau operations the
CONSISTENCY search and ``rep(T)`` membership hammer on: everything here
speaks term IDs (:mod:`repro.core`) — variables are negative ints, constants
non-negative ints, atoms are :class:`~repro.core.iatoms.IAtom` patterns, and
databases are :class:`~repro.core.factset.IFactSet`. No boxed model object
is constructed on these paths (enforced by ``tools/check_no_boxed_hotpath.py``).

Three operations live here:

* :func:`core_embeddings` / :func:`core_embeds` — the backtracking
  homomorphism search σ(U) ⊆ D over integer tuples;
* :func:`ground_atoms` — applying an ID valuation to a pattern tableau,
  producing fact IDs;
* :func:`quotient_valuations_ids` — the restricted-growth enumeration of
  valuations over a constant pool plus canonically-ordered fresh constants
  (the complete quotient search of Lemma 3.1's proof shape).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.factset import IFactSet
from repro.core.iatoms import IAtom
from repro.core.symbols import SymbolTable


def order_for_embedding(atoms: Sequence[IAtom], keys: Sequence) -> Tuple[IAtom, ...]:
    """Most-constrained-first atom order, by externally supplied sort keys.

    The boundary passes keys derived from the boxed rendering so the search
    visits atoms in the same deterministic order as the boxed implementation.
    """
    paired = sorted(zip(keys, range(len(atoms))))
    return tuple(atoms[i] for _, i in paired)


def core_embeddings(
    atoms: Sequence[IAtom],
    facts: IFactSet,
    seed: Optional[Dict[int, int]] = None,
) -> Iterator[Dict[int, int]]:
    """All valuations σ (variable ID → constant ID) with σ(atoms) ⊆ facts.

    Backtracking search; *atoms* should already be in most-constrained-first
    order (see :func:`order_for_embedding`). Yielded dicts are fresh copies,
    safe to keep across iterations.
    """
    table = facts.table
    fact_args = table.fact_args
    n = len(atoms)
    binding: Dict[int, int] = dict(seed) if seed else {}

    def extend(index: int) -> Iterator[Dict[int, int]]:
        if index == n:
            yield dict(binding)
            return
        atom = atoms[index]
        pattern = atom.args
        ground = True
        for t in pattern:
            if t < 0 and t not in binding:
                ground = False
                break
        if ground:
            fid = table.find_fact(
                atom.relation,
                tuple(binding[t] if t < 0 else t for t in pattern),
            )
            if fid is not None and fid in facts:
                yield from extend(index + 1)
            return
        for fid in facts.by_relation(atom.relation):
            args = fact_args(fid)
            added: List[int] = []
            ok = True
            for p, c in zip(pattern, args):
                if p >= 0:
                    if p != c:
                        ok = False
                        break
                else:
                    seen = binding.get(p)
                    if seen is None:
                        binding[p] = c
                        added.append(p)
                    elif seen != c:
                        ok = False
                        break
            if ok:
                yield from extend(index + 1)
            for p in added:
                del binding[p]

    yield from extend(0)


def core_embeds(atoms: Sequence[IAtom], facts: IFactSet) -> bool:
    """Is there at least one embedding of *atoms* into *facts*?"""
    for _ in core_embeddings(atoms, facts):
        return True
    return False


def ground_atoms(
    table: SymbolTable,
    atoms: Sequence[IAtom],
    valuation: Dict[int, int],
) -> Set[int]:
    """Apply an ID valuation to pattern atoms; returns the set of fact IDs.

    Every variable of every atom must be bound by *valuation* (the quotient
    search guarantees this: valuations are total over the tableau's
    variables).
    """
    fact = table.fact
    out: Set[int] = set()
    for atom in atoms:
        if atom.ground:
            out.add(fact(atom.relation, atom.args))
        else:
            out.add(
                fact(
                    atom.relation,
                    tuple(
                        valuation[t] if t < 0 else t for t in atom.args
                    ),
                )
            )
    return out


def ground_atoms_grouped(
    atoms: Sequence[IAtom],
    valuation: Dict[int, int],
) -> Dict[int, Set[Tuple[int, ...]]]:
    """Apply an ID valuation to pattern atoms, grouped by relation.

    Unlike :func:`ground_atoms` this never touches a symbol table: the
    result maps relation IDs to sets of argument-ID tuples — exactly the
    candidate shape :meth:`repro.core.views.CoreCollection.admits_grouped`
    consumes — so the quotient search interns nothing per candidate.
    """
    grouped: Dict[int, Set[Tuple[int, ...]]] = {}
    for atom in atoms:
        if atom.ground:
            args = atom.args
        else:
            args = tuple(valuation[t] if t < 0 else t for t in atom.args)
        grouped.setdefault(atom.relation, set()).add(args)
    return grouped


def quotient_valuations_ids(
    variables: Sequence[int],
    constants: Sequence[int],
    fresh_pool: Sequence[int],
) -> Iterator[Dict[int, int]]:
    """All valuations of *variables* over *constants* plus fresh constants,
    canonical up to renaming of the fresh part.

    The ID mirror of
    :func:`repro.consistency.checker.quotient_valuations`: fresh constants
    (pre-interned by the boundary, one per variable) are introduced in
    restricted-growth order — a variable may map to fresh constant #j only
    when #0..#j−1 are already in use — so each identification pattern is
    enumerated exactly once. The enumeration order matches the boxed
    implementation image-for-image.
    """
    n = len(variables)
    images: List[int] = [0] * n

    def extend(index: int, used_fresh: int) -> Iterator[Dict[int, int]]:
        if index == n:
            yield dict(zip(variables, images))
            return
        for c in constants:
            images[index] = c
            yield from extend(index + 1, used_fresh)
        for j in range(used_fresh + 1):
            if j < len(fresh_pool):
                images[index] = fresh_pool[j]
                yield from extend(index + 1, max(used_fresh, j + 1))

    yield from extend(0, 0)
