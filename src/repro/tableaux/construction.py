"""Constructing the templates T^U(S), C^U(S) of Section 4.

For a source collection S and an *allowable combination* U = (u_1, ..., u_n)
of sound subsets (u_i ⊆ v_i with |u_i| ≥ s_i·|v_i|):

* ``T^U(S_i)`` grounds the view body once per chosen fact u ∈ u_i (head
  matched to u, existential variables freshly renamed per fact);
* ``C^U(S_i)`` is the cardinality constraint: a tableau V^U(S_i) of
  m_i + 1 = ⌊|u_i|/c_i⌋ + 1 "rows" of the view body with fresh head
  variables, together with the substitutions θ_{p,r} equating two rows —
  so any database deriving more than m_i distinct head facts violates it.

The resulting :class:`~repro.tableaux.template.DatabaseTemplate` per U, and
their union over all allowable U, realize Theorem 4.1:
``poss(S) = ∪_U rep(T^U(S))``.

Views whose bodies contain built-in atoms are supported by *materializing*
the built-in relations over the finite domain (:func:`materialize_builtins`);
the template machinery itself treats every atom as stored.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant, FreshVariableFactory, Variable, as_term
from repro.model.valuation import Substitution, match_atom
from repro.queries.builtins import BuiltinRegistry
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.util.combinatorics import subsets_of_size_at_least
from repro.tableaux.constraints import Constraint
from repro.tableaux.tableau import Tableau
from repro.tableaux.template import DatabaseTemplate

SoundCombination = Tuple[FrozenSet[Atom], ...]


def allowable_combinations(collection: SourceCollection) -> Iterator[SoundCombination]:
    """The set 𝒰 of Theorem 4.1: all (u_1..u_n) with u_i ⊆ v_i, |u_i| ≥ s_i|v_i|."""
    per_source = [
        [frozenset(u) for u in subsets_of_size_at_least(
            sorted(s.extension), s.min_sound_count())]
        for s in collection
    ]
    for combo in product(*per_source):
        yield tuple(combo)


def minimal_combinations(collection: SourceCollection) -> Iterator[SoundCombination]:
    """Only the minimum-cardinality sound subsets (|u_i| = ⌈s_i|v_i|⌉).

    Useful as a cheaper first pass in consistency checking: enlarging u_i
    only tightens the soundness side trivially but loosens the completeness
    cap, so minimal subsets are not always sufficient — callers fall back to
    :func:`allowable_combinations` for completeness.
    """
    from itertools import combinations

    per_source = [
        [frozenset(u) for u in combinations(sorted(s.extension), s.min_sound_count())]
        for s in collection
    ]
    for combo in product(*per_source):
        yield tuple(combo)


def _ground_body_for_fact(
    source: SourceDescriptor,
    u: Atom,
    fresh: FreshVariableFactory,
) -> List[Atom]:
    """Body atoms witnessing head fact *u*, with fresh existential variables."""
    theta = match_atom(source.view.head, u)
    if theta is None:
        raise SourceError(
            f"extension fact {u} does not match the head of view {source.view}"
        )
    bound = theta.domain()
    existential = {
        v: fresh.fresh()
        for atom in source.view.body
        for v in atom.variables()
        if v not in bound
    }
    renaming = Substitution({**dict(theta.items()), **existential})
    return [atom.substitute(renaming) for atom in source.view.body]


def source_tableau(
    source: SourceDescriptor,
    sound_subset: Iterable[Atom],
    fresh: FreshVariableFactory,
) -> Tableau:
    """``T^U(S_i)``: grounded bodies for every chosen sound fact."""
    atoms: List[Atom] = []
    for u in sorted(sound_subset):
        atoms.extend(_ground_body_for_fact(source, u, fresh))
    return Tableau(atoms)


def cardinality_constraint(
    source: SourceDescriptor,
    sound_count: int,
    fresh: FreshVariableFactory,
) -> Optional[Constraint]:
    """``C^U(S_i)``: |φ_i(D)| ≤ m_i = ⌊sound_count / c_i⌋, as (V, Θ).

    Returns ``None`` when c_i = 0 (no completeness constraint).
    """
    m = source.max_intended_size(sound_count)
    if m is None:
        return None
    head_vars = sorted(source.view.head.variables())
    rows: List[Dict[Variable, Variable]] = []
    body_atoms: List[Atom] = []
    for _ in range(m + 1):
        row_map = {v: fresh.fresh() for v in head_vars}
        existential = {
            v: fresh.fresh()
            for atom in source.view.body
            for v in atom.variables()
            if v not in row_map
        }
        renaming = Substitution({**row_map, **existential})
        body_atoms.extend(atom.substitute(renaming) for atom in source.view.body)
        rows.append(row_map)
    thetas: List[Substitution] = []
    for p in range(m + 1):
        for r in range(m + 1):
            if p == r:
                continue
            thetas.append(
                Substitution({rows[p][v]: rows[r][v] for v in head_vars})
            )
    if not head_vars and m >= 1:
        # A variable-free head can produce at most one fact; the cardinality
        # bound m_i >= 1 is vacuous.
        return None
    if not thetas:
        # m = 0: *no* embedding of even a single row is allowed, i.e.
        # φ_i(D) must be empty. Θ is empty, so any embedding violates.
        pass
    return Constraint(Tableau(body_atoms), thetas, label=f"card[{source.name}]<= {m}")


def template_for_combination(
    collection: SourceCollection,
    combination: SoundCombination,
) -> DatabaseTemplate:
    """``𝒯^U(S) = ⟨T^U(S), C^U(S)⟩`` for one allowable combination U."""
    taken: set = set()
    for s in collection:
        taken |= s.view.variables()
    fresh = FreshVariableFactory(taken=taken, prefix="_t")
    tableau = Tableau([])
    constraints: List[Constraint] = []
    for source, sound_subset in zip(collection, combination):
        tableau = tableau | source_tableau(source, sound_subset, fresh)
        constraint = cardinality_constraint(source, len(sound_subset), fresh)
        if constraint is not None:
            constraints.append(constraint)
    return DatabaseTemplate([tableau], constraints)


def templates_for_collection(
    collection: SourceCollection,
) -> Iterator[Tuple[SoundCombination, DatabaseTemplate]]:
    """All (U, 𝒯^U(S)) pairs — the right-hand side of Theorem 4.1."""
    for combination in allowable_combinations(collection):
        yield combination, template_for_combination(collection, combination)


def materialize_builtins(
    registry: BuiltinRegistry, domain: Iterable, names: Iterable[str]
) -> GlobalDatabase:
    """Built-in relations as explicit binary fact sets over a finite domain.

    Lets the tableau machinery (which has no built-in evaluation) reason
    about views like ``V(s,y,v) ← Temperature(s,y,v), After(y,1900)``:
    add these facts to candidate databases before membership checks.
    """
    constants = [as_term(c) for c in domain]
    facts: List[Atom] = []
    for name in names:
        builtin = registry.get(name)
        if builtin is None:
            raise SourceError(f"unknown builtin: {name}")
        if builtin.arity != 2:
            raise SourceError(
                f"only binary builtins can be materialized, {name} has arity "
                f"{builtin.arity}"
            )
        for a in constants:
            for b in constants:
                if builtin.check((a.value, b.value)):
                    facts.append(Atom(name, (a, b)))
    return GlobalDatabase(facts)
