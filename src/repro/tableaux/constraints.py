"""Constraints (U, Θ) over a schema (Section 4).

A constraint is a tableau U plus a set Θ of substitutions. A database D
*satisfies* (U, Θ) when every valuation σ embedding U into D is compatible
with at least one θ ∈ Θ. The cardinality constraints C^U(S_i) of Section 4
are exactly of this shape: embedding m_i + 1 "rows" forces two rows to
coincide.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Tuple

from repro.model.database import GlobalDatabase
from repro.model.valuation import Substitution, compatible
from repro.tableaux.tableau import Tableau


class Constraint:
    """``(U, Θ)``: tableau plus allowed substitutions.

    >>> from repro.model import atom, Variable, Constant
    >>> x = Variable("x")
    >>> c = Constraint(Tableau([atom("R", "a", x)]),
    ...                [Substitution({x: Constant("b")})])
    """

    __slots__ = ("tableau", "substitutions", "label")

    def __init__(
        self,
        tableau: Tableau,
        substitutions: Iterable[Substitution],
        label: str = "",
    ):
        self.tableau = tableau
        self.substitutions: Tuple[Substitution, ...] = tuple(substitutions)
        self.label = label

    def satisfied_by(self, database: GlobalDatabase) -> bool:
        """Every embedding of U into D is compatible with some θ ∈ Θ."""
        for valuation in self.tableau.embeddings(database):
            if not any(compatible(valuation, theta) for theta in self.substitutions):
                return False
        return True

    def violating_embeddings(self, database: GlobalDatabase) -> Iterator[Substitution]:
        """Embeddings incompatible with every θ (for diagnostics/tests)."""
        for valuation in self.tableau.embeddings(database):
            if not any(compatible(valuation, theta) for theta in self.substitutions):
                yield valuation

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constraint)
            and self.tableau == other.tableau
            and frozenset(self.substitutions) == frozenset(other.substitutions)
        )

    def __hash__(self) -> int:
        return hash((self.tableau, frozenset(self.substitutions)))

    def __repr__(self) -> str:
        name = f" {self.label}" if self.label else ""
        return (
            f"Constraint{name}(|U|={len(self.tableau)}, "
            f"|Theta|={len(self.substitutions)})"
        )
