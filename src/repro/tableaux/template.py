"""Database templates ⟨T_1, ..., T_m, C⟩ and rep(T) (Definition 4.1).

A template compactly represents the set of databases that (i) contain a
valuation image of at least one of its tableaux and (ii) satisfy every
constraint. Membership testing is exact; enumeration over a finite domain is
provided for the Theorem 4.1 differential tests.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import DomainTooLargeError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.schema import GlobalSchema, schema_of_atoms
from repro.model.terms import Constant, as_term
from repro.tableaux.constraints import Constraint
from repro.tableaux.tableau import Tableau

#: Enumeration guard, matching repro.confidence.worlds.MAX_FACT_SPACE.
MAX_ENUMERATION_FACTS = 22


class DatabaseTemplate:
    """⟨T_1, ..., T_m, C⟩: alternative tableaux plus shared constraints.

    >>> from repro.model import atom, Variable
    >>> t = DatabaseTemplate([Tableau([atom("R", "a", Variable("x"))])], [])
    >>> len(t.tableaux)
    1
    """

    __slots__ = ("tableaux", "constraints")

    def __init__(
        self, tableaux: Iterable[Tableau], constraints: Iterable[Constraint] = ()
    ):
        self.tableaux: Tuple[Tableau, ...] = tuple(tableaux)
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)

    # -- membership (Definition 4.1) ---------------------------------------------

    def admits(self, database: GlobalDatabase) -> bool:
        """``D ∈ rep(T)``: some tableau embeds in D and all constraints hold."""
        if not any(t.embeds_in(database) for t in self.tableaux):
            return False
        return all(c.satisfied_by(database) for c in self.constraints)

    def violated_constraints(self, database: GlobalDatabase) -> List[Constraint]:
        """Constraints *database* breaks (diagnostics)."""
        return [c for c in self.constraints if not c.satisfied_by(database)]

    # -- schema & enumeration -------------------------------------------------------

    def schema(self) -> GlobalSchema:
        """Relations mentioned by tableaux and constraint tableaux."""
        atoms: List[Atom] = []
        for t in self.tableaux:
            atoms.extend(t)
        for c in self.constraints:
            atoms.extend(c.tableau)
        return schema_of_atoms(atoms)

    def represented_databases(
        self,
        domain: Iterable,
        schema: Optional[GlobalSchema] = None,
        max_facts: Optional[int] = None,
    ) -> Iterator[GlobalDatabase]:
        """Enumerate ``rep(T)`` restricted to facts over *schema* × *domain*.

        Definition 4.1 allows arbitrary supersets; restricting to a finite
        fact space makes the set finite. *schema* defaults to the template's
        own schema (pass ``sch(S)`` when comparing against poss(S)).
        """
        schema = schema if schema is not None else self.schema()
        constants = [as_term(c) for c in domain]
        candidates = sorted(schema.fact_space(constants))
        if len(candidates) > MAX_ENUMERATION_FACTS:
            raise DomainTooLargeError(
                f"fact space has {len(candidates)} facts (> {MAX_ENUMERATION_FACTS})"
            )
        limit = len(candidates) if max_facts is None else min(max_facts, len(candidates))
        for size in range(limit + 1):
            for combo in combinations(candidates, size):
                database = GlobalDatabase(combo)
                if self.admits(database):
                    yield database

    def __repr__(self) -> str:
        return (
            f"DatabaseTemplate(tableaux={len(self.tableaux)}, "
            f"constraints={len(self.constraints)})"
        )


def union_of_reps(
    templates: Iterable[DatabaseTemplate],
    domain: Iterable,
    schema: Optional[GlobalSchema] = None,
    max_facts: Optional[int] = None,
) -> Set[GlobalDatabase]:
    """``∪_U rep(T^U(S))`` over a finite fact space (Theorem 4.1's right side)."""
    worlds: Set[GlobalDatabase] = set()
    for template in templates:
        worlds.update(
            template.represented_databases(domain, schema=schema, max_facts=max_facts)
        )
    return worlds
