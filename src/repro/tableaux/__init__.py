"""Tableaux, constraints, and database templates (Section 4)."""

from repro.tableaux.constraints import Constraint
from repro.tableaux.construction import (
    allowable_combinations,
    cardinality_constraint,
    materialize_builtins,
    minimal_combinations,
    source_tableau,
    template_for_combination,
    templates_for_collection,
)
from repro.tableaux.possible_worlds import (
    direct_possible_worlds,
    template_possible_worlds,
    theorem41_holds,
)
from repro.tableaux.query_answers import (
    answer_tableau,
    answer_template,
    certain_answer_from_tableau,
    certain_answer_from_template,
    certain_answer_from_templates,
)
from repro.tableaux.tableau import Tableau
from repro.tableaux.template import DatabaseTemplate, union_of_reps

__all__ = [
    "Tableau",
    "Constraint",
    "DatabaseTemplate",
    "union_of_reps",
    "allowable_combinations",
    "minimal_combinations",
    "source_tableau",
    "cardinality_constraint",
    "template_for_combination",
    "templates_for_collection",
    "materialize_builtins",
    "template_possible_worlds",
    "direct_possible_worlds",
    "theorem41_holds",
    "certain_answer_from_tableau",
    "certain_answer_from_template",
    "certain_answer_from_templates",
    "answer_tableau",
    "answer_template",
]
