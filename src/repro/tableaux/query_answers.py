"""Certain answers computed from database templates (§6 future work).

The paper's discussion proposes using the Theorem 4.1 representation "to
compute a finite representation of the answer to any query". This module
implements the classical route:

* for one tableau T, every database in its representation contains a
  valuation image of T, and conjunctive queries are monotone — so a
  null-free answer of Q over the *frozen* tableau (variables to labeled
  nulls) is in Q(D) for **every** represented database;
* for a template ⟨T_1..T_m, C⟩ a certain answer must hold under every
  tableau alternative: intersect over the T_i;
* for a source collection S, poss(S) = ∪_U rep(T^U(S)) (Theorem 4.1), so
  certain answers over poss(S) are the intersection over the allowable
  combinations U.

Constraints C only *remove* databases from a representation, so the result
is a sound **under-approximation** of the true certain answer (exact when no
constraint prunes a tableau's minimal worlds — in particular for templates
without constraints). Differential tests compare it against exhaustive
world enumeration on finite domains.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant
from repro.plan import evaluate
from repro.queries.conjunctive import ConjunctiveQuery
from repro.sources.collection import SourceCollection
from repro.tableaux.construction import templates_for_collection
from repro.tableaux.tableau import Tableau
from repro.tableaux.template import DatabaseTemplate

NULL_PREFIX = "_frz"


def _mentions_null(fact: Atom) -> bool:
    return any(
        isinstance(a, Constant)
        and isinstance(a.value, str)
        and a.value.startswith(NULL_PREFIX)
        for a in fact.args
    )


def certain_answer_from_tableau(
    query: ConjunctiveQuery, tableau: Tableau
) -> FrozenSet[Atom]:
    """Null-free answers of *query* over the frozen tableau."""
    frozen, _ = tableau.freeze()
    database = GlobalDatabase(frozen.atoms)
    return frozenset(
        f for f in evaluate(query, database) if not _mentions_null(f)
    )


def answer_tableau(query: ConjunctiveQuery, tableau: Tableau) -> Tableau:
    """The *symbolic* answer: query evaluated with variables kept as variables.

    The paper's §6 asks for "a finite representation of the answer to any
    query" from the Theorem 4.1 templates. For a single tableau this is the
    classical construction: freeze variables to labeled nulls, evaluate, and
    map the nulls back — producing answer atoms that may carry variables.
    An atom like ``ans(a, y)`` reads "in every represented database there is
    an answer (a, w) for *some* witness w" — strictly more informative than
    the certain answer (its ground atoms) alone.
    """
    frozen, freezing = tableau.freeze()
    unfreeze = {
        constant: variable for variable, constant in freezing.items()
    }
    database = GlobalDatabase(frozen.atoms)
    answers = []
    for answer in evaluate(query, database):
        answers.append(
            Atom(
                answer.relation,
                tuple(unfreeze.get(a, a) for a in answer.args),
            )
        )
    return Tableau(answers)


def answer_template(
    query: ConjunctiveQuery, template: DatabaseTemplate
) -> DatabaseTemplate:
    """The §6 finite answer representation: one answer tableau per
    alternative, packaged as a (constraint-free) template over ``ans``."""
    return DatabaseTemplate(
        [answer_tableau(query, t) for t in template.tableaux], []
    )


def certain_answer_from_template(
    query: ConjunctiveQuery, template: DatabaseTemplate
) -> FrozenSet[Atom]:
    """Certain answers over ``rep(T)`` (sound under-approximation).

    An empty template (no tableaux) represents no databases; by convention
    the certain answer is then empty rather than "everything".
    """
    result: Optional[FrozenSet[Atom]] = None
    for tableau in template.tableaux:
        answers = certain_answer_from_tableau(query, tableau)
        result = answers if result is None else (result & answers)
        if not result:
            break
    return result if result is not None else frozenset()


def certain_answer_from_templates(
    query: ConjunctiveQuery, collection: SourceCollection
) -> FrozenSet[Atom]:
    """Certain answers over poss(S) via Theorem 4.1's template family.

    Intersects the per-combination certain answers across all allowable
    sound-subset combinations 𝒰. Sound: every returned fact is in Q(D) for
    every possible database. Exponential in Σ|v_i| (the set 𝒰 is), like
    everything exact in this problem space.
    """
    result: Optional[FrozenSet[Atom]] = None
    for _, template in templates_for_collection(collection):
        answers = certain_answer_from_template(query, template)
        result = answers if result is None else (result & answers)
        if not result:
            break
    return result if result is not None else frozenset()
