"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of the library with a single ``except`` clause while
still being able to discriminate finer-grained conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """Malformed relational-model object (term, atom, fact, database)."""


class ArityError(ModelError):
    """An atom's argument count disagrees with its relation's declared arity."""


class NotGroundError(ModelError):
    """A ground object (fact, database) was required but variables occur."""


class QueryError(ReproError):
    """Malformed query or view definition."""


class UnsafeQueryError(QueryError):
    """A query whose head contains variables not bound in the body."""


class ParseError(QueryError):
    """The Datalog-style text parser rejected its input."""


class BuiltinError(QueryError):
    """A built-in predicate was used with unbound arguments or bad arity."""


class SourceError(ReproError):
    """Malformed source descriptor or source collection."""


class BoundError(SourceError):
    """A soundness/completeness bound outside the interval [0, 1]."""


class InconsistentCollectionError(ReproError):
    """An operation requiring a consistent source collection was applied to
    a collection whose set of possible databases is empty."""


class DomainTooLargeError(ReproError):
    """An exact possible-worlds computation was requested over a domain too
    large for exhaustive methods; use the Monte-Carlo estimator instead."""


class ReductionError(ReproError):
    """A problem reduction received an instance outside its stated form."""
