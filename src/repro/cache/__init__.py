"""``repro.cache`` — the unified, memory-budgeted cache runtime.

Every shared cache in the repo (engine memo, plan cache, data sources,
statistics catalog, shard partition/fragment/portable stores) is an
:class:`~repro.cache.runtime.LRUMemo` enrolled in the process-wide
:class:`~repro.cache.runtime.CacheRegistry` returned by
:func:`cache_registry`. The registry gives them three things no
hand-rolled ``OrderedDict`` had:

* a **global byte budget** (``--cache-budget-mb``) with weighted
  least-recently-used eviction across caches,
* a single **invalidation bus**
  (:meth:`~repro.cache.runtime.CacheRegistry.invalidate_tags`) that a
  registry diff drives once to retire every derived artifact of a
  retired world, and
* one uniform **stats tree** (``stats()["cache"]``).

See ``docs/caching.md`` for the full design.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.runtime import (
    DEFAULT_CACHE_SIZE,
    CacheRegistry,
    CacheStats,
    LRUMemo,
    default_sizeof,
    sizeof_estimate,
)
from repro.core.symbols import global_table

_REGISTRY = CacheRegistry()

# A destructive rollback of the global symbol table invalidates interned
# IDs that enrolled caches may have captured; flush them through the bus.
global_table().on_rollback(_REGISTRY.on_symbol_rollback)


def cache_registry() -> CacheRegistry:
    """The process-wide cache registry every shared cache enrolls in."""
    return _REGISTRY


def set_cache_budget_mb(budget_mb: Optional[float]) -> None:
    """Set (or clear, with ``None``) the global cache budget in MiB.

    The CLI's ``--cache-budget-mb`` lands here; fractional budgets are
    fine (``0.25`` = 256 KiB), and ``0`` means "evict everything evictable"
    — useful in tests that pin worst-case behavior.
    """
    if budget_mb is None:
        _REGISTRY.set_budget(None)
    else:
        if budget_mb < 0:
            raise ValueError("--cache-budget-mb must be >= 0")
        _REGISTRY.set_budget(int(budget_mb * 1024 * 1024))


__all__ = [
    "CacheRegistry",
    "CacheStats",
    "DEFAULT_CACHE_SIZE",
    "LRUMemo",
    "cache_registry",
    "default_sizeof",
    "set_cache_budget_mb",
    "sizeof_estimate",
]
