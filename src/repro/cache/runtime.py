"""The cache runtime: one memory-budgeted LRU type and its process registry.

Before this module existed every derived-artifact cache in the repo — the
engine's counting memo, the plan cache, the per-world data sources, the
statistics catalog, the shard partition/fragment stores — was a separate
hand-rolled ``OrderedDict`` with its own eviction constant, its own
(sometimes absent) locking, and its own hand-wired invalidation path. This
module replaces all of them with two pieces:

* :class:`LRUMemo` — a thread-safe LRU with **per-entry cost accounting**
  (a ``sizeof`` hook prices each entry in bytes at store time), **tags**
  (arbitrary hashables naming what an entry derives from — typically the
  :class:`~repro.core.factset.IFactSet` of the world it was computed over),
  and uniform counters (``hits/misses/evictions/bytes/invalidations``).
* :class:`CacheRegistry` — the process-wide runtime every shared cache
  enrolls in. It owns an optional **global byte budget** shared across all
  enrolled caches: when the accounted total exceeds the budget, the
  registry evicts globally-least-recent entries *across* caches (weighted
  by their byte cost) until the total fits — a cache holding cold, heavy
  entries yields space to one serving hot, light ones, which no per-cache
  entry bound can do. It is also the **invalidation bus**:
  :meth:`CacheRegistry.invalidate_tags` retires, in one call, every entry
  of every enrolled cache that derives from a retired world, snapshot, or
  counting problem.

Recency is global: every hit or store draws a tick from one process-wide
counter, so "least recent across all caches" is well-defined without any
cross-cache lock ordering. Lock discipline: a cache's own lock is never
held while the registry lock is taken (stores release before rebalancing),
and the registry takes at most one cache lock at a time — no lock-order
cycles, property-hammered in ``tests/cache/test_runtime.py``.

Invalidation matches an entry when the tag set it was stored with
intersects the retired tags, **or when its key itself is among the tags**
— content-addressed caches (the engine memo, whose canonical keys *are*
the counting problems; the data-source and statistics caches, keyed by
fact-set value) need no duplicate tag storage.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from itertools import count, islice
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

#: Default capacity (entry count) of a memo, matching the engine's
#: historical shared-memo bound.
DEFAULT_CACHE_SIZE = 4096

#: How many elements of a container :func:`sizeof_estimate` samples before
#: extrapolating (keeps pricing O(1) in the container size).
_SIZEOF_SAMPLE = 8

#: The process-wide recency clock. ``itertools.count`` advances atomically
#: under CPython, and ticks are only *compared* under locks, so the clock
#: itself needs none.
_TICK = count(1)


def sizeof_estimate(obj: Any, depth: int = 3) -> int:
    """A fast, deterministic byte estimate of one Python object.

    ``sys.getsizeof`` plus a sampled extrapolation over container elements
    (first ``_SIZEOF_SAMPLE`` items price the rest), recursing ``depth``
    levels. An *estimate*: budget accounting needs consistency, not
    ``tracemalloc`` accuracy — the same object always prices the same.
    """
    size = sys.getsizeof(obj)
    if depth <= 0:
        return size
    if isinstance(obj, (tuple, list, set, frozenset)):
        n = len(obj)
        if n:
            sample = list(islice(iter(obj), _SIZEOF_SAMPLE))
            per = sum(sizeof_estimate(s, depth - 1) for s in sample)
            size += (per * n) // len(sample)
    elif isinstance(obj, dict):
        n = len(obj)
        if n:
            sample = list(islice(obj.items(), _SIZEOF_SAMPLE))
            per = sum(
                sizeof_estimate(k, depth - 1) + sizeof_estimate(v, depth - 1)
                for k, v in sample
            )
            size += (per * n) // len(sample)
    return size


def default_sizeof(key: Hashable, value: Any) -> int:
    """The default per-entry cost hook: estimated bytes of key plus value."""
    return sizeof_estimate(key) + sizeof_estimate(value)


class CacheStats(NamedTuple):
    """A point-in-time snapshot of a memo's counters.

    The first five fields predate the cache runtime and keep their exact
    positions — code unpacking the historical 5-tuple keeps working;
    ``bytes`` and ``invalidations`` are runtime additions with defaults.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    bytes: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never asked)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable rendering (the ``stats()["cache"]`` leaf)."""
        out: Dict[str, object] = dict(self._asdict())
        out["hit_rate"] = self.hit_rate
        return out


class _Entry:
    """One cache line: the value plus its cost, tags, and recency tick."""

    __slots__ = ("value", "cost", "tags", "tick")

    def __init__(self, value: Any, cost: int, tags: Tuple[Hashable, ...]):
        self.value = value
        self.cost = cost
        self.tags = tags
        self.tick = next(_TICK)


class LRUMemo:
    """A thread-safe LRU cache with byte accounting and tag invalidation.

    Parameters
    ----------
    maxsize:
        Per-cache entry-count bound (the historical eviction rule; always
        enforced). The registry's byte budget evicts *on top of* this.
    name:
        The cache's name in the registry's ``stats()`` tree. Anonymous
        memos (private engine caches, test fixtures) may omit it.
    sizeof:
        ``(key, value) -> bytes`` cost hook, priced once at store time.
        Defaults to :func:`default_sizeof`.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        *,
        name: Optional[str] = None,
        sizeof: Optional[Callable[[Hashable, Any], int]] = None,
    ):
        if maxsize <= 0:
            raise ValueError("LRUMemo needs a positive maxsize")
        self.maxsize = maxsize
        self.name = name
        self._sizeof = sizeof if sizeof is not None else default_sizeof
        self._data: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._tag_index: Dict[Hashable, set] = {}
        self._lock = threading.Lock()
        self._registry: Optional["CacheRegistry"] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._bytes = 0

    # -- core operations ---------------------------------------------------------

    def lookup(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)``; a hit refreshes the entry's (global) recency."""
        with self._lock:
            entry = self._data.get(key)
            if entry is not None:
                self._data.move_to_end(key)
                entry.tick = next(_TICK)
                self.hits += 1
                return True, entry.value
            self.misses += 1
            return False, None

    def peek(self, key: Hashable) -> Optional[Any]:
        """The cached value without counting a hit or touching recency.

        For opportunistic reads — e.g. the statistics catalog consulting a
        parent fact set's profile for incremental maintenance — that should
        neither skew hit rates nor keep an otherwise-cold entry alive.
        """
        with self._lock:
            entry = self._data.get(key)
            return entry.value if entry is not None else None

    def store(
        self, key: Hashable, value: Any, tags: Iterable[Hashable] = ()
    ) -> None:
        """Insert or refresh an entry, tagged with what it derives from."""
        with self._lock:
            self._store_locked(key, value, tags)
        self._after_store()

    def get_or_create(
        self,
        key: Hashable,
        factory: Callable[[], Any],
        tags: Iterable[Hashable] = (),
    ) -> Any:
        """The entry's value, minting it atomically on first sight.

        The factory runs under the cache lock, so exactly one value is ever
        minted per key — the get-or-assign discipline token issuance needs
        (two tokens for one fragment would defeat the worker-side payload
        cache). Keep factories cheap and free of cache/registry reentry.
        """
        with self._lock:
            entry = self._data.get(key)
            if entry is not None:
                self._data.move_to_end(key)
                entry.tick = next(_TICK)
                self.hits += 1
                return entry.value
            self.misses += 1
            value = factory()
            self._store_locked(key, value, tags)
        self._after_store()
        return value

    def _store_locked(
        self, key: Hashable, value: Any, tags: Iterable[Hashable]
    ) -> None:
        old = self._data.get(key)
        if old is not None:
            self._unindex(key, old)
        entry = _Entry(value, max(0, int(self._sizeof(key, value))), tuple(tags))
        self._data[key] = entry
        self._data.move_to_end(key)
        self._bytes += entry.cost
        for tag in entry.tags:
            self._tag_index.setdefault(tag, set()).add(key)
        while len(self._data) > self.maxsize:
            self._evict_locked()

    def _after_store(self) -> None:
        registry = self._registry
        if registry is not None:
            registry.balance()

    def _unindex(self, key: Hashable, entry: _Entry) -> None:
        self._bytes -= entry.cost
        for tag in entry.tags:
            keys = self._tag_index.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._tag_index[tag]

    def _evict_locked(self) -> None:
        key, entry = self._data.popitem(last=False)
        self._unindex(key, entry)
        self.evictions += 1

    def discard(self, key: Hashable) -> bool:
        """Drop one entry if present; ``True`` when something was removed.

        Discarding is *not* an eviction (not counted in ``evictions``):
        callers use it to retire entries they can prove unreachable.
        """
        with self._lock:
            entry = self._data.pop(key, None)
            if entry is None:
                return False
            self._unindex(key, entry)
            return True

    def invalidate_tags(self, tags: Iterable[Hashable]) -> int:
        """Retire every entry tagged with — or keyed by — any of *tags*.

        Returns how many entries were dropped; each counts once in
        ``invalidations``. Key matching makes content-addressed caches
        (entries whose key *is* the derived artifact's identity)
        invalidatable without storing duplicate tags.
        """
        dropped = 0
        with self._lock:
            doomed = set()
            for tag in tags:
                keys = self._tag_index.get(tag)
                if keys is not None:
                    doomed.update(keys)
                try:
                    if tag in self._data:
                        doomed.add(tag)
                except TypeError:  # unhashable tag can match nothing here
                    continue
            for key in doomed:
                entry = self._data.pop(key, None)
                if entry is not None:
                    self._unindex(key, entry)
                    dropped += 1
            self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        with self._lock:
            self._data.clear()
            self._tag_index.clear()
            self._bytes = 0

    # -- registry hooks (each takes the cache lock briefly; never nested) --------

    def oldest_tick(self) -> Optional[int]:
        """The recency tick of the least-recent entry (``None`` if empty)."""
        with self._lock:
            if not self._data:
                return None
            return next(iter(self._data.values())).tick

    def evict_oldest(self) -> int:
        """Evict the least-recent entry; returns the bytes reclaimed."""
        with self._lock:
            if not self._data:
                return 0
            entry = next(iter(self._data.values()))
            cost = entry.cost
            self._evict_locked()
            return cost

    # -- introspection -----------------------------------------------------------

    @property
    def bytes(self) -> int:
        """Accounted bytes currently held (sum of entry costs)."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> CacheStats:
        """A consistent point-in-time :class:`CacheStats` snapshot."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._data),
                maxsize=self.maxsize,
                bytes=self._bytes,
                invalidations=self.invalidations,
            )

    def __repr__(self) -> str:
        name = f"{self.name!r}, " if self.name else ""
        return (
            f"LRUMemo({name}{len(self._data)}/{self.maxsize} entries, "
            f"{self._bytes} bytes)"
        )


class CacheRegistry:
    """The process-wide cache runtime: budget, invalidation bus, stats tree.

    Enrolled caches share one optional byte budget; ``None`` (the default)
    means per-cache ``maxsize`` bounds alone apply — exactly the historical
    behavior, at zero added cost on the store path.
    """

    def __init__(self, budget_bytes: Optional[int] = None):
        self._lock = threading.Lock()
        self._caches: "OrderedDict[str, LRUMemo]" = OrderedDict()
        self._id_sensitive: Dict[str, bool] = {}
        self._budget = budget_bytes
        self.budget_evictions = 0
        self.rollback_flushes = 0

    # -- enrollment --------------------------------------------------------------

    def enroll(
        self, memo: LRUMemo, *, id_sensitive: bool = True
    ) -> LRUMemo:
        """Put one named cache under the registry's budget and bus.

        *id_sensitive* marks caches whose keys or values capture interned
        symbol IDs (:mod:`repro.core.symbols`): a destructive symbol-table
        rollback flushes them (IDs above the truncation point may have been
        reused by then, which content-addressing cannot detect).
        """
        if not memo.name:
            raise ValueError("an enrolled cache needs a name")
        with self._lock:
            existing = self._caches.get(memo.name)
            if existing is not None and existing is not memo:
                raise ValueError(f"cache {memo.name!r} is already enrolled")
            self._caches[memo.name] = memo
            self._id_sensitive[memo.name] = id_sensitive
        memo._registry = self
        return memo

    def is_enrolled(self, memo: LRUMemo) -> bool:
        """Whether *memo* itself (by identity) is under this registry."""
        with self._lock:
            return any(m is memo for m in self._caches.values())

    def cache(self, name: str) -> Optional[LRUMemo]:
        """The enrolled cache of that name, if any."""
        with self._lock:
            return self._caches.get(name)

    def caches(self) -> List[LRUMemo]:
        """Every enrolled cache, in enrollment order."""
        with self._lock:
            return list(self._caches.values())

    # -- the byte budget ---------------------------------------------------------

    def set_budget(self, budget_bytes: Optional[int]) -> None:
        """Set (or clear, with ``None``) the global byte budget."""
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 or None")
        with self._lock:
            self._budget = budget_bytes
        self.balance()

    def budget(self) -> Optional[int]:
        """The global byte budget, or ``None`` when unbounded."""
        return self._budget

    def total_bytes(self) -> int:
        """Accounted bytes across every enrolled cache."""
        return sum(memo.bytes for memo in self.caches())

    def balance(self) -> int:
        """Evict globally-least-recent entries until the budget fits.

        The victim each round is the enrolled cache whose *oldest* entry has
        the smallest global recency tick — a merge of all per-cache LRU
        orders, weighted by byte cost (one heavy cold entry buys room for
        many light hot ones). Returns how many entries were evicted. No-op
        without a budget.
        """
        if self._budget is None:
            return 0
        evicted = 0
        with self._lock:
            budget = self._budget
            if budget is None:
                return 0
            caches = list(self._caches.values())
            while sum(memo.bytes for memo in caches) > budget:
                victim: Optional[LRUMemo] = None
                victim_tick: Optional[int] = None
                for memo in caches:
                    tick = memo.oldest_tick()
                    if tick is not None and (
                        victim_tick is None or tick < victim_tick
                    ):
                        victim, victim_tick = memo, tick
                if victim is None:
                    break
                victim.evict_oldest()
                evicted += 1
            self.budget_evictions += evicted
        return evicted

    # -- the invalidation bus ----------------------------------------------------

    def invalidate_tags(self, tags: Iterable[Hashable]) -> Dict[str, int]:
        """Retire every enrolled entry deriving from any of *tags*.

        One registry diff, one call: the returned ``{cache name: dropped}``
        map says exactly which derived artifacts each layer gave up, and
        feeds the service's invalidation metrics.
        """
        tags = tuple(tags)
        out: Dict[str, int] = {}
        if not tags:
            return out
        for memo in self.caches():
            dropped = memo.invalidate_tags(tags)
            if dropped:
                out[memo.name or repr(memo)] = dropped
        return out

    def on_symbol_rollback(self, removed: int) -> None:
        """Flush ID-sensitive caches after a destructive symbol rollback.

        Wired to :meth:`repro.core.symbols.SymbolTable.on_rollback` for the
        global table. Rollbacks only happen on aborted registry mutations
        (rare), so a flush — sound by construction — beats tracking which
        entries captured since-reused IDs.
        """
        if removed <= 0:
            return
        with self._lock:
            sensitive = [
                memo
                for name, memo in self._caches.items()
                if self._id_sensitive.get(name, True)
            ]
            self.rollback_flushes += 1
        for memo in sensitive:
            flushed = len(memo)
            memo.clear()
            if flushed:
                with memo._lock:
                    memo.invalidations += flushed

    def clear_all(self) -> None:
        """Drop every enrolled cache's entries (tests and benchmarks)."""
        for memo in self.caches():
            memo.clear()

    # -- the stats tree ----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The unified ``stats()["cache"]`` tree: per-cache and global.

        Shape::

            {"budget_bytes": int|None, "bytes": int, "hits": int,
             "misses": int, "evictions": int, "invalidations": int,
             "budget_evictions": int, "rollback_flushes": int,
             "caches": {name: {hits, misses, hit_rate, evictions,
                               invalidations, bytes, size, maxsize}}}
        """
        per_cache: Dict[str, Dict[str, object]] = {}
        totals = {"hits": 0, "misses": 0, "evictions": 0,
                  "invalidations": 0, "bytes": 0}
        for memo in self.caches():
            snapshot = memo.stats()
            per_cache[memo.name or repr(memo)] = snapshot.to_dict()
            totals["hits"] += snapshot.hits
            totals["misses"] += snapshot.misses
            totals["evictions"] += snapshot.evictions
            totals["invalidations"] += snapshot.invalidations
            totals["bytes"] += snapshot.bytes
        return {
            "budget_bytes": self._budget,
            "budget_evictions": self.budget_evictions,
            "rollback_flushes": self.rollback_flushes,
            "caches": per_cache,
            **totals,
        }

    def __repr__(self) -> str:
        budget = self._budget
        rendered = f"{budget}B" if budget is not None else "unbounded"
        return (
            f"CacheRegistry({len(self.caches())} caches, "
            f"{self.total_bytes()}B / {rendered})"
        )
