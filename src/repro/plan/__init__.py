"""``repro.plan``: one compiled, cached execution pipeline for every query path.

PR 3 interned the consistency/confidence hot paths; this package does the
same for *query evaluation*. Both query languages — conjunctive queries and
the σ/π/×/∪ relational algebra — compile into one physical plan IR over the
interned core (:mod:`repro.plan.ir`), with:

* interned relation scans carrying pushed-down selections,
* hash joins whose build-side indexes are cached per database,
* builtin/σ filters applied at the earliest bound point,
* a canonical-form plan cache keyed by alpha-equivalence
  (:mod:`repro.plan.compiler` / :mod:`repro.plan.cache`), and
* ``EXPLAIN``-able plans (``python -m repro answer ... --explain``).

Every evaluator in the repo routes here: ``queries.evaluation.evaluate``,
the algebra interpreter, the rewriting executor, tableaux query answering,
per-world confidence evaluation, and the mediator service's query requests.
The pre-existing backtracking and naive evaluators survive as differential
oracles (``evaluate_backtracking`` / ``evaluate_naive``), same pattern as
:mod:`repro.core.baseline`.
"""

from repro.plan.cache import (
    plan_cache_stats,
    plan_cache_stats_dict,
    shared_plan_cache,
)
from repro.plan.compiler import compile_query, plan_for, plan_key
from repro.plan.executor import (
    MAX_DATA_SOURCES,
    PlanDataSource,
    clear_data_sources,
    data_source_count,
    data_source_for,
    evaluate,
    evaluate_rows,
    execute_plan,
    explain,
)
from repro.plan.ir import CompiledPlan, PlanError

__all__ = [
    "CompiledPlan",
    "MAX_DATA_SOURCES",
    "PlanDataSource",
    "PlanError",
    "clear_data_sources",
    "compile_query",
    "data_source_count",
    "data_source_for",
    "evaluate",
    "evaluate_rows",
    "execute_plan",
    "explain",
    "plan_cache_stats",
    "plan_cache_stats_dict",
    "plan_for",
    "plan_key",
    "plan_stats",
    "shared_plan_cache",
]


def plan_stats() -> dict:
    """One JSON-serializable snapshot of the plan layer's caches."""
    return {
        "cache": plan_cache_stats_dict(),
        "data_sources": data_source_count(),
    }
