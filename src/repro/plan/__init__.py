"""``repro.plan``: one compiled, cached execution pipeline for every query path.

PR 3 interned the consistency/confidence hot paths; this package does the
same for *query evaluation*. Both query languages — conjunctive queries and
the σ/π/×/∪ relational algebra — compile into one physical plan IR over the
interned core (:mod:`repro.plan.ir`), with:

* interned relation scans carrying pushed-down selections,
* hash joins whose build-side indexes are cached per database,
* builtin/σ filters applied at the earliest bound point,
* a canonical-form plan cache keyed by alpha-equivalence
  (:mod:`repro.plan.compiler` / :mod:`repro.plan.cache`),
* a cost-based adaptive optimizer (:mod:`repro.plan.optimizer`) fed by a
  statistics catalog (:mod:`repro.plan.statistics`) that picks join orders,
  flags tiny probe sides, and re-optimizes plans whose runtime feedback
  shows mis-estimates, and
* ``EXPLAIN``-able plans (``python -m repro answer ... --explain``) plus
  measured ``EXPLAIN ANALYZE`` trees (:mod:`repro.plan.analyze`,
  ``--explain-analyze``).

Every evaluator in the repo routes here: ``queries.evaluation.evaluate``,
the algebra interpreter, the rewriting executor, tableaux query answering,
per-world confidence evaluation, and the mediator service's query requests.
The pre-existing backtracking and naive evaluators survive as differential
oracles (``evaluate_backtracking`` / ``evaluate_naive``), same pattern as
:mod:`repro.core.baseline`.
"""

from repro.plan.analyze import (
    analyze_plan,
    explain_analyze,
    explain_analyze_worlds,
)
from repro.plan.cache import (
    plan_cache_stats,
    plan_cache_stats_dict,
    shared_plan_cache,
)
from repro.plan.compiler import compile_query, plan_for, plan_key
from repro.plan.executor import (
    MAX_DATA_SOURCES,
    PlanDataSource,
    clear_data_sources,
    data_source_count,
    data_source_for,
    discard_data_source,
    evaluate,
    evaluate_rows,
    execute_plan,
    explain,
)
from repro.plan.ir import CompiledPlan, PlanError
from repro.plan.optimizer import (
    PlanFeedback,
    choose_join_order,
    optimizer_stats,
    reset_optimizer_stats,
)
from repro.plan.statistics import (
    TableStatistics,
    cached_statistics,
    clear_statistics,
    discard_statistics,
    statistics_counters,
    statistics_for,
)

__all__ = [
    "CompiledPlan",
    "MAX_DATA_SOURCES",
    "PlanDataSource",
    "PlanError",
    "PlanFeedback",
    "TableStatistics",
    "analyze_plan",
    "cached_statistics",
    "choose_join_order",
    "clear_data_sources",
    "clear_statistics",
    "compile_query",
    "data_source_count",
    "data_source_for",
    "discard_data_source",
    "discard_statistics",
    "evaluate",
    "evaluate_rows",
    "execute_plan",
    "explain",
    "explain_analyze",
    "explain_analyze_worlds",
    "optimizer_stats",
    "plan_cache_stats",
    "plan_cache_stats_dict",
    "plan_for",
    "plan_key",
    "plan_stats",
    "reset_optimizer_stats",
    "shared_plan_cache",
    "statistics_counters",
    "statistics_for",
]


def plan_stats() -> dict:
    """One JSON-serializable snapshot of the plan layer's caches."""
    return {
        "cache": plan_cache_stats_dict(),
        "data_sources": data_source_count(),
        "statistics": statistics_counters(),
        "optimizer": optimizer_stats(),
    }
