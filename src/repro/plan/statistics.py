"""The statistics catalog: per-relation cardinality, distinct and MCV sketches.

The cost model (:mod:`repro.plan.optimizer`) needs three numbers per scan to
price a join order: how many rows a relation holds, how many distinct values
each argument position takes, and which values dominate a skewed column.
:class:`TableStatistics` computes all three from one pass over an
:class:`~repro.core.factset.IFactSet`'s grouped view and keeps the full
per-column value-count maps, which buys two things:

* **exact distinct counts** (no HyperLogLog approximation needed at these
  scales), and
* **incremental maintenance** — a fact set derived from an already-profiled
  parent (``with_ids`` / ``without_ids`` / set algebra, see
  :meth:`~repro.core.factset.IFactSet.derivation`) updates the parent's
  counts fact-by-fact instead of rescanning, whenever the delta is small
  relative to the extension.

Catalog entries are **content-addressed**: statistics are keyed by the fact
set's value, so an entry can never be wrong for its key — eviction and the
service's :class:`~repro.service.registry.RegistryDiff`-driven
:func:`discard_statistics` calls are cache hygiene, never correctness.
Everything here speaks interned IDs; values decode only in
:meth:`ColumnStats.explain_mcv` for EXPLAIN output.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache import cache_registry
from repro.cache.runtime import LRUMemo
from repro.core.factset import IFactSet

#: Most-common-value sketch width: enough to capture heavy hitters in the
#: skewed benchmark workloads without bloating the catalog.
MCV_WIDTH = 8

#: Keep at most this many profiled fact sets (the per-world loops cycle
#: through far fewer live worlds at a time; mirrors ``MAX_DATA_SOURCES``).
MAX_STATISTICS = 128

#: Only maintain incrementally when the delta is at most this fraction of
#: the derived set's size — past that, a fresh scan is cheaper and keeps
#: the count maps compact.
INCREMENTAL_DELTA_FRACTION = 0.5


class ColumnStats:
    """Distinct count and most-common-value sketch of one argument position."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[Counter] = None):
        self.counts: Counter = counts if counts is not None else Counter()

    @property
    def distinct(self) -> int:
        """Exact number of distinct values in this column."""
        return len(self.counts)

    def most_common(self, width: int = MCV_WIDTH) -> List[Tuple[int, int]]:
        """The ``(constant_id, count)`` heavy hitters, deterministic order."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:width]

    def frequency(self, cid: int, total: int) -> float:
        """Estimated fraction of rows whose value is *cid*.

        Known values answer exactly from the count map; unknown values are
        assumed absent (the map is exact, not a sketch, so absence is
        certain as long as the statistics are fresh).
        """
        if total <= 0:
            return 0.0
        return self.counts.get(cid, 0) / total

    def explain_mcv(self, table, width: int = 3) -> str:
        """Decoded heavy hitters for EXPLAIN output, e.g. ``'a'×40, 'b'×2``."""
        parts = [
            f"{table.constant_value(cid)!r}×{count}"
            for cid, count in self.most_common(width)
        ]
        return ", ".join(parts)

    def copy(self) -> "ColumnStats":
        """An independent copy (incremental maintenance mutates counts)."""
        return ColumnStats(Counter(self.counts))


class RelationStats:
    """Cardinality plus per-argument-position :class:`ColumnStats`."""

    __slots__ = ("cardinality", "columns")

    def __init__(self, cardinality: int = 0, columns: Tuple[ColumnStats, ...] = ()):
        self.cardinality = cardinality
        self.columns = columns

    def column(self, position: int) -> Optional[ColumnStats]:
        """Statistics of argument position *position*, if profiled."""
        if 0 <= position < len(self.columns):
            return self.columns[position]
        return None

    def add_tuple(self, args: Tuple[int, ...]) -> None:
        """Count one fact's argument tuple into the statistics."""
        self.cardinality += 1
        if len(args) > len(self.columns):
            self.columns = self.columns + tuple(
                ColumnStats() for _ in range(len(args) - len(self.columns))
            )
        for position, cid in enumerate(args):
            self.columns[position].counts[cid] += 1

    def remove_tuple(self, args: Tuple[int, ...]) -> None:
        """Uncount one fact's argument tuple (incremental maintenance)."""
        self.cardinality -= 1
        for position, cid in enumerate(args):
            column = self.column(position)
            if column is None:
                continue
            remaining = column.counts[cid] - 1
            if remaining > 0:
                column.counts[cid] = remaining
            else:
                del column.counts[cid]

    def copy(self) -> "RelationStats":
        """A deep-enough copy for incremental maintenance."""
        return RelationStats(
            self.cardinality, tuple(c.copy() for c in self.columns)
        )


class TableStatistics:
    """Per-relation statistics of one fact set, ready for the cost model."""

    __slots__ = ("table", "total_facts", "relations", "incremental")

    def __init__(self, table, relations: Dict[int, RelationStats], total: int,
                 incremental: bool = False):
        self.table = table
        self.relations = relations
        self.total_facts = total
        self.incremental = incremental

    @classmethod
    def profile(cls, facts: IFactSet) -> "TableStatistics":
        """Profile a fact set from scratch (one pass over ``grouped()``)."""
        relations: Dict[int, RelationStats] = {}
        for rid, tuples in facts.grouped().items():
            stats = relations.setdefault(rid, RelationStats())
            for args in tuples:
                stats.add_tuple(args)
        return cls(facts.table, relations, len(facts))

    @classmethod
    def derive(
        cls,
        base: "TableStatistics",
        facts: IFactSet,
        added: Iterable[int],
        removed: Iterable[int],
    ) -> "TableStatistics":
        """The base statistics updated by a small add/remove delta."""
        relations = {rid: stats.copy() for rid, stats in base.relations.items()}
        fact_tuple = facts.table.fact_tuple
        for fid in added:
            t = fact_tuple(fid)
            relations.setdefault(t[0], RelationStats()).add_tuple(t[1:])
        for fid in removed:
            t = fact_tuple(fid)
            stats = relations.get(t[0])
            if stats is not None:
                stats.remove_tuple(t[1:])
                if stats.cardinality <= 0:
                    del relations[t[0]]
        return cls(facts.table, relations, len(facts), incremental=True)

    def relation(self, rid: int) -> Optional[RelationStats]:
        """Statistics of relation *rid*, or ``None`` for an empty relation."""
        return self.relations.get(rid)

    def cardinality(self, rid: int) -> int:
        """Row count of relation *rid* (0 when absent — exact, not a guess)."""
        stats = self.relations.get(rid)
        return stats.cardinality if stats is not None else 0

    def __repr__(self) -> str:
        return (
            f"TableStatistics({len(self.relations)} relations, "
            f"{self.total_facts} facts)"
        )


# -- the process-wide statistics catalog ---------------------------------------

def _statistics_sizeof(facts: IFactSet, stats: TableStatistics) -> int:
    """Price a catalog entry: count maps scale with the profiled facts."""
    return 400 + 120 * max(stats.total_facts, 1)


_CATALOG = cache_registry().enroll(
    LRUMemo(
        maxsize=MAX_STATISTICS,
        name="plan.statistics",
        sizeof=_statistics_sizeof,
    )
)
# Profile/incremental counters sit outside the memo's uniform stats; the
# lock only guards these two ints (the catalog itself is internally locked).
_COUNTER_LOCK = threading.Lock()
_PROFILE_COUNT = 0
_INCREMENTAL_COUNT = 0


def statistics_for(facts: IFactSet) -> TableStatistics:
    """The cached :class:`TableStatistics` of a fact set (LRU, by value).

    A derivation-hinted fact set whose parent is already profiled updates
    incrementally when the delta is small (``INCREMENTAL_DELTA_FRACTION``);
    everything else is profiled from scratch. Both outcomes land in the
    catalog, so per-world loops over perturbed databases profile each world
    at delta cost, not extension cost. Keyed by the fact set itself, so the
    invalidation bus retires entries by key match on retired worlds.
    """
    global _PROFILE_COUNT, _INCREMENTAL_COUNT
    hit, stats = _CATALOG.lookup(facts)
    if hit:
        return stats
    base: Optional[TableStatistics] = None
    derivation = facts.derivation()
    if derivation is not None:
        threshold = max(1, int(len(facts) * INCREMENTAL_DELTA_FRACTION))
        if derivation.delta_size() <= threshold:
            parent = derivation.parent()
            if parent is not None:
                # Opportunistic: neither counts a hit nor refreshes the
                # parent's recency — incremental reuse is a bonus, not a use.
                base = _CATALOG.peek(parent)
    if base is not None:
        stats = TableStatistics.derive(
            base, facts, derivation.added, derivation.removed
        )
        with _COUNTER_LOCK:
            _INCREMENTAL_COUNT += 1
    else:
        stats = TableStatistics.profile(facts)
        with _COUNTER_LOCK:
            _PROFILE_COUNT += 1
    _CATALOG.store(facts, stats)
    return stats


def cached_statistics(facts: IFactSet) -> Optional[TableStatistics]:
    """The catalog entry for *facts* if present, without profiling."""
    return _CATALOG.peek(facts)


def discard_statistics(facts: IFactSet) -> bool:
    """Drop one catalog entry (the RegistryDiff invalidation path).

    Entries are content-addressed so this is hygiene, not correctness: the
    service calls it for retired snapshots' certain databases to keep the
    catalog from silting up under registry churn. Kept callable directly,
    but the invalidation bus reaches the same entries by key match.
    """
    return _CATALOG.discard(facts)


def clear_statistics() -> None:
    """Drop the whole catalog (tests and benchmarks reset with it)."""
    global _PROFILE_COUNT, _INCREMENTAL_COUNT
    _CATALOG.clear()
    with _COUNTER_LOCK:
        _PROFILE_COUNT = 0
        _INCREMENTAL_COUNT = 0


def statistics_counters() -> Dict[str, int]:
    """Catalog health counters for ``plan_stats()`` / service ``stats()``."""
    with _COUNTER_LOCK:
        return {
            "cached": len(_CATALOG),
            "profiled": _PROFILE_COUNT,
            "incremental": _INCREMENTAL_COUNT,
        }
