"""EXPLAIN ANALYZE: measured per-operator cardinalities next to estimates.

The hot interpreter (:func:`repro.plan.executor._run`) stays uninstrumented;
this module keeps a parallel interpreter that mirrors its semantics exactly
(including the ``prefer_scan_probe`` strategy choice and the per-source
operator caches) while recording each operator's actual output cardinality.
The annotated tree then renders every plan line as::

    hash-join [left.col0 = right.col0]  (est=310 actual=288 rows)

Two entry points match the two CLI surfaces: :func:`explain_analyze` runs a
query over one database; :func:`explain_analyze_worlds` aggregates the same
measurements over an iterable of possible worlds (the ``answer`` command's
setting, where a query never runs over just one database).

Analyzed executions feed the same runtime-feedback loop as normal ones
(:func:`repro.plan.executor.record_feedback`), so EXPLAIN ANALYZE is an
observation point, not a fork of the adaptive behavior.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.plan.executor import (
    PlanDataSource,
    _build_index,
    _scan_probe_join,
    data_source_for,
    format_est,
    record_feedback,
)
from repro.plan.ir import (
    CompiledPlan,
    FilterNode,
    HashJoinNode,
    PlanError,
    PlanNode,
    ProjectNode,
    ScanNode,
    UnionPlanNode,
    UnitNode,
)

#: Per-plan-node actual row counts, keyed by node identity (``id(node)``).
Actuals = Dict[int, int]


def _run_measured(
    node: PlanNode, source: PlanDataSource, actuals: Actuals
) -> Sequence[Tuple[int, ...]]:
    """Evaluate *node* and fold its output cardinality into *actuals*."""
    rows = _eval_measured(node, source, actuals)
    actuals[id(node)] = actuals.get(id(node), 0) + len(rows)
    return rows


def _eval_measured(
    node: PlanNode, source: PlanDataSource, actuals: Actuals
) -> Sequence[Tuple[int, ...]]:
    node_type = type(node)
    if node_type is ScanNode:
        return source.scan_rows(node)
    if node_type is HashJoinNode:
        left_rows = _run_measured(node.left, source, actuals)
        right = node.right
        if type(right) is ScanNode:
            # Measure the build side even when the probe side came up empty
            # (the hot path would short-circuit; the diagnostic should not).
            right_rows = source.scan_rows(right)
            actuals[id(right)] = actuals.get(id(right), 0) + len(right_rows)
            if (
                node.prefer_scan_probe
                and source.cached_index(right, node.right_keys) is None
            ):
                return _scan_probe_join(node, left_rows, source)
            index = source.join_index(right, node.right_keys)
        else:
            index = _build_index(
                _run_measured(right, source, actuals), node.right_keys
            )
        left_keys = node.left_keys
        out: List[Tuple[int, ...]] = []
        if left_keys:
            get = index.get
            for lrow in left_rows:
                matches = get(tuple(lrow[c] for c in left_keys))
                if matches:
                    for rrow in matches:
                        out.append(lrow + rrow)
        else:
            right_rows = index.get((), ())
            for lrow in left_rows:
                for rrow in right_rows:
                    out.append(lrow + rrow)
        return out
    if node_type is FilterNode:
        predicate = node.predicate
        table = source.table
        return [
            row
            for row in _run_measured(node.child, source, actuals)
            if predicate.evaluate(row, table)
        ]
    if node_type is ProjectNode:
        columns = node.columns
        seen: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()
        for row in _run_measured(node.child, source, actuals):
            seen.setdefault(
                tuple(row[c] if isinstance(c, int) else c.cid for c in columns)
            )
        return tuple(seen)
    if node_type is UnitNode:
        return ((),)
    if node_type is UnionPlanNode:
        seen = OrderedDict()
        for child in node.children:
            for row in _run_measured(child, source, actuals):
                seen.setdefault(row)
        return tuple(seen)
    raise PlanError(f"unknown plan node {node_type.__name__}")


def analyze_plan(
    plan: CompiledPlan, source: PlanDataSource
) -> Tuple[frozenset, Actuals]:
    """Run *plan* measured: ``(answer rows, per-node actual cardinalities)``.

    Observations flow into the plan's runtime feedback exactly as a normal
    execution's would.
    """
    table = source.table
    actuals: Actuals = {}
    for predicate in plan.prefilters:
        if not predicate.evaluate((), table):
            return frozenset(), actuals
    rows = frozenset(_run_measured(plan.root, source, actuals))
    record_feedback(plan, source, len(rows))
    return rows, actuals


def render_analysis(plan: CompiledPlan, actuals: Actuals, worlds: int = 1) -> str:
    """The annotated EXPLAIN ANALYZE tree of one (or many) measured runs."""

    def annotate(node: PlanNode) -> str:
        parts = []
        if node.est_rows is not None:
            parts.append(f"est={format_est(node.est_rows)}")
        actual = actuals.get(id(node))
        if actual is not None:
            if worlds > 1:
                parts.append(f"actual={actual / worlds:.1f}/world")
            else:
                parts.append(f"actual={actual}")
        if not parts:
            return ""
        return "  (" + " ".join(parts) + " rows)"

    return plan.explain(annotate=annotate)


def explain_analyze(query, database, table=None) -> str:
    """EXPLAIN ANALYZE one query over one database.

    Compiles (or re-uses) the cost-based plan for the database's fact set,
    executes it with per-operator measurement, and renders the annotated
    tree plus a feedback summary line.
    """
    from repro.plan.compiler import plan_for

    core = database.core()
    plan = plan_for(query, table=table, facts=core)
    source = data_source_for(core)
    result, actuals = analyze_plan(plan, source)
    lines = [render_analysis(plan, actuals), f"answers: {len(result)}"]
    feedback = plan.feedback
    if feedback is not None and feedback.checks:
        line = f"max q-error: {feedback.max_q_error:.2f}"
        if feedback.stale:
            line += " (plan marked stale; next cache hit re-optimizes)"
        lines.append(line)
    return "\n".join(lines)


def explain_analyze_worlds(query, worlds: Iterable, table=None) -> str:
    """EXPLAIN ANALYZE aggregated over an iterable of possible worlds.

    The plan is compiled once (against the first world's statistics); every
    world is executed measured, actual cardinalities are summed, and the
    rendering reports per-operator means per world — the shape the
    possible-worlds ``answer`` command actually pays for.
    """
    from repro.plan.compiler import plan_for

    plan = None
    totals: Actuals = {}
    world_count = 0
    answer_total = 0
    for world in worlds:
        core = world.core()
        if plan is None:
            plan = plan_for(query, table=table, facts=core)
        source = data_source_for(core)
        result, actuals = analyze_plan(plan, source)
        for key, value in actuals.items():
            totals[key] = totals.get(key, 0) + value
        answer_total += len(result)
        world_count += 1
    if plan is None:
        return "no possible worlds to analyze"
    lines = [
        render_analysis(plan, totals, worlds=world_count),
        (
            f"worlds analyzed: {world_count}, "
            f"mean answers/world: {answer_total / world_count:.1f}"
        ),
    ]
    feedback = plan.feedback
    if feedback is not None and feedback.checks:
        line = f"max q-error: {feedback.max_q_error:.2f}"
        if feedback.stale:
            line += " (plan marked stale; next cache hit re-optimizes)"
        lines.append(line)
    return "\n".join(lines)
