"""The cost-based adaptive optimizer: join order, build sides, feedback.

The static compiler orders a conjunctive body with ``order_body`` — a purely
syntactic most-bound-first heuristic that cannot see that ``Big`` holds
20 000 rows and ``Tiny`` holds 12. This module prices orders with the
statistics catalog (:mod:`repro.plan.statistics`) instead:

* **scan estimates** — relation cardinality × the selectivity of the scan's
  pushed-down equalities. Constant equalities answer from the exact
  per-column value counts (an MCV hit is priced at its true frequency, a
  missing value at zero); repeated-variable equalities use
  ``1 / max(distinct)``.
* **join estimates** — the textbook ``|L|·|R| / ∏ max(d_L(v), d_R(v))``
  over the shared variables, with per-variable distinct counts carried
  through the intermediate states.
* **order search** — exhaustive dynamic programming over atom subsets
  (Selinger-style, cost = total intermediate rows) for bodies of at most
  :data:`DP_THRESHOLD` relational atoms, greedy cheapest-next-join above
  it. Both tie-break deterministically, so a plan is a pure function of
  (query, statistics).
* **build vs probe** — a hash join whose probe side is estimated far
  smaller than its build side is flagged ``prefer_scan_probe``: the
  executor then filters the scan's rows directly instead of building (and
  caching) a large hash index that a handful of probe rows would barely
  use. Warm executions with an already-cached index ignore the flag.
* **runtime feedback** — every optimized plan carries a
  :class:`PlanFeedback`; executions record actual vs estimated
  cardinalities, and a q-error beyond :data:`REOPT_RATIO` marks the plan
  stale. The next plan-cache hit re-optimizes against the *observed*
  cardinalities (capped by :data:`MAX_REOPTS_PER_PLAN` so an adversarial
  workload cannot thrash the compiler).

Answers never change: the optimizer only permutes join order and physical
join strategy, and the property suite pins optimized ≡ backtracking ≡
naive on randomized databases.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.plan.statistics import TableStatistics

#: Bodies with at most this many relational atoms get the exact
#: dynamic-programming order search; larger bodies fall back to greedy.
DP_THRESHOLD = 7

#: A plan whose estimated/actual cardinality ratio (q-error) exceeds this
#: on any recorded operator is marked stale and re-optimized on the next
#: plan-cache hit.
REOPT_RATIO = 8.0

#: Ignore mis-estimates where both sides are below this many rows — the
#: plans are indistinguishable down there and re-optimizing is pure churn.
REOPT_MIN_ROWS = 16

#: Flag ``prefer_scan_probe`` when the probe side is estimated at least
#: this many times smaller than the build side.
SCAN_PROBE_FACTOR = 64.0

#: After this many re-optimizations one plan is pinned as-is.
MAX_REOPTS_PER_PLAN = 3

#: Selectivity charged to a residual (builtin / comparison) filter when
#: annotating estimates; filters never participate in the order search.
FILTER_SELECTIVITY = 1.0 / 3.0


# -- global optimizer health counters ------------------------------------------

class OptimizerCounters:
    """Process-wide optimizer health counters (thread-safe, monotonic)."""

    __slots__ = (
        "_lock", "plans_optimized", "plans_static", "dp_orders",
        "greedy_orders", "scan_probe_flags", "feedback_checks",
        "misestimates", "reoptimizations", "q_error_sum", "q_error_count",
        "max_q_error",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self.plans_optimized = 0
        self.plans_static = 0
        self.dp_orders = 0
        self.greedy_orders = 0
        self.scan_probe_flags = 0
        self.feedback_checks = 0
        self.misestimates = 0
        self.reoptimizations = 0
        self.q_error_sum = 0.0
        self.q_error_count = 0
        self.max_q_error = 0.0

    def record_q_error(self, q: float) -> None:
        """Fold one observed estimate-vs-actual q-error into the counters."""
        with self._lock:
            self.feedback_checks += 1
            self.q_error_sum += q
            self.q_error_count += 1
            if q > self.max_q_error:
                self.max_q_error = q

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment one named counter."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable view (``plan_stats()`` / service ``stats()``)."""
        with self._lock:
            mean = (
                self.q_error_sum / self.q_error_count
                if self.q_error_count else None
            )
            return {
                "plans_optimized": self.plans_optimized,
                "plans_static": self.plans_static,
                "dp_orders": self.dp_orders,
                "greedy_orders": self.greedy_orders,
                "scan_probe_flags": self.scan_probe_flags,
                "feedback_checks": self.feedback_checks,
                "misestimates": self.misestimates,
                "reoptimizations": self.reoptimizations,
                "mean_q_error": mean,
                "max_q_error": self.max_q_error or None,
            }

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks)."""
        with self._lock:
            self.plans_optimized = 0
            self.plans_static = 0
            self.dp_orders = 0
            self.greedy_orders = 0
            self.scan_probe_flags = 0
            self.feedback_checks = 0
            self.misestimates = 0
            self.reoptimizations = 0
            self.q_error_sum = 0.0
            self.q_error_count = 0
            self.max_q_error = 0.0


_COUNTERS = OptimizerCounters()


def optimizer_counters() -> OptimizerCounters:
    """The process-wide :class:`OptimizerCounters` singleton."""
    return _COUNTERS


def optimizer_stats() -> Dict[str, object]:
    """The counters as plain data (exposed under ``plan_stats()['optimizer']``)."""
    return _COUNTERS.snapshot()


def reset_optimizer_stats() -> None:
    """Zero the process-wide counters (tests and benchmarks)."""
    _COUNTERS.reset()


# -- runtime feedback ----------------------------------------------------------

def q_error(estimated: Optional[float], actual: int) -> float:
    """The symmetric over/under-estimation ratio (1.0 = perfect)."""
    if estimated is None:
        return 1.0
    est = max(float(estimated), 0.0) + 1.0
    act = float(actual) + 1.0
    return max(est / act, act / est)


class PlanFeedback:
    """Actual-vs-estimated cardinalities observed while running one plan.

    ``observed`` maps a scan's ``cache_key()`` to the actual row count its
    pushed-down scan produced — exactly the overrides the re-optimization
    pass feeds back into the cost model. ``stale`` flips when any recorded
    operator mis-estimates beyond :data:`REOPT_RATIO`; the plan cache acts
    on it at the next hit.
    """

    __slots__ = ("observed", "checks", "max_q_error", "stale", "reopt_count")

    def __init__(self, reopt_count: int = 0):
        self.observed: Dict[Tuple, int] = {}
        self.checks = 0
        self.max_q_error = 1.0
        self.stale = False
        self.reopt_count = reopt_count

    def record(self, estimated: Optional[float], actual: int) -> float:
        """Fold one operator observation in; returns its q-error."""
        q = q_error(estimated, actual)
        self.checks += 1
        if q > self.max_q_error:
            self.max_q_error = q
        significant = max(
            actual, estimated if estimated is not None else 0
        ) >= REOPT_MIN_ROWS
        if (
            q > REOPT_RATIO
            and significant
            and self.reopt_count < MAX_REOPTS_PER_PLAN
            and not self.stale
        ):
            self.stale = True
            _COUNTERS.bump("misestimates")
        return q


# -- cardinality estimation ----------------------------------------------------

def estimate_scan(
    scan,
    stats: TableStatistics,
    overrides: Optional[Dict[Tuple, int]] = None,
) -> float:
    """Estimated output rows of one pushed-down scan.

    An override (observed actual from a previous execution of the same scan
    shape) wins outright; otherwise cardinality × pushdown selectivity from
    the exact per-column counts.
    """
    if overrides:
        observed = overrides.get(scan.cache_key())
        if observed is not None:
            return float(observed)
    relation = stats.relation(scan.rid)
    if relation is None:
        return 0.0
    est = float(relation.cardinality)
    for position, cid in scan.const_eq:
        column = relation.column(position)
        if column is None:
            return 0.0
        est *= column.frequency(cid, relation.cardinality)
    for first, later in scan.dup_eq:
        distincts = [
            c.distinct
            for c in (relation.column(first), relation.column(later))
            if c is not None and c.distinct
        ]
        est /= float(max(distincts)) if distincts else 1.0
    return est


def _scan_var_distincts(scan, out_vars, stats, est: float) -> Dict[object, float]:
    """Per-output-variable distinct-count estimates of one scan."""
    relation = stats.relation(scan.rid)
    distincts: Dict[object, float] = {}
    for j, variable in enumerate(out_vars):
        position = scan.output[j]
        column = relation.column(position) if relation is not None else None
        d = float(column.distinct) if column is not None else 1.0
        distincts[variable] = max(1.0, min(d, est if est >= 1.0 else 1.0))
    return distincts


def estimate_join(
    left_rows: float,
    left_distincts: Dict[object, float],
    right_rows: float,
    right_distincts: Dict[object, float],
) -> Tuple[float, Dict[object, float]]:
    """``|L ⨝ R|`` and the merged per-variable distincts of the result."""
    est = left_rows * right_rows
    shared = [v for v in right_distincts if v in left_distincts]
    for v in shared:
        est /= max(left_distincts[v], right_distincts[v], 1.0)
    merged: Dict[object, float] = {}
    for v, d in left_distincts.items():
        merged[v] = min(d, est) if est >= 1.0 else 1.0
    for v, d in right_distincts.items():
        merged.setdefault(v, min(d, est) if est >= 1.0 else 1.0)
    return est, merged


# -- join-order search ---------------------------------------------------------

class OrderedScan:
    """One scan in the chosen order, with its cost-model annotations."""

    __slots__ = ("scan", "out_vars", "atom", "scan_est", "result_est")

    def __init__(self, scan, out_vars, atom, scan_est: float, result_est: float):
        self.scan = scan
        self.out_vars = out_vars
        self.atom = atom
        self.scan_est = scan_est
        self.result_est = result_est


class JoinOrder:
    """The optimizer's verdict: ordered scans plus bookkeeping for EXPLAIN."""

    __slots__ = ("ordered", "method", "total_cost")

    def __init__(self, ordered: List[OrderedScan], method: str, total_cost: float):
        self.ordered = ordered
        self.method = method
        self.total_cost = total_cost


def _tie_key(item) -> Tuple:
    """Deterministic tie-break: relation name, scan shape, body position."""
    scan, _out_vars, _atom, index = item
    return (scan.relation, scan.cache_key(), index)


def choose_join_order(
    items: Sequence[Tuple],
    stats: TableStatistics,
    overrides: Optional[Dict[Tuple, int]] = None,
) -> JoinOrder:
    """Pick a join order for ``(scan, out_vars, atom)`` triples.

    Dynamic programming (exact over the cost metric) below
    :data:`DP_THRESHOLD`, greedy cheapest-next-join above. The cost metric
    is the classic C\\ :sub:`out` — the sum of estimated intermediate result
    sizes — which is also what the executor's materializing interpreter
    actually pays.
    """
    indexed = [
        (scan, out_vars, atom, i) for i, (scan, out_vars, atom) in enumerate(items)
    ]
    scan_ests = [estimate_scan(scan, stats, overrides) for scan, _v, _a, _i in indexed]
    var_dists = [
        _scan_var_distincts(scan, out_vars, stats, scan_ests[i])
        for i, (scan, out_vars, _a, _i2) in enumerate(indexed)
    ]
    if len(indexed) <= 1:
        ordered = [
            OrderedScan(s, v, a, scan_ests[i], scan_ests[i])
            for i, (s, v, a, _j) in enumerate(indexed)
        ]
        return JoinOrder(ordered, "trivial", sum(scan_ests))
    if len(indexed) <= DP_THRESHOLD:
        order, cost = _dp_order(indexed, scan_ests, var_dists)
        method = "dp"
        _COUNTERS.bump("dp_orders")
    else:
        order, cost = _greedy_order(indexed, scan_ests, var_dists)
        method = "greedy"
        _COUNTERS.bump("greedy_orders")
    ordered: List[OrderedScan] = []
    acc_rows = 0.0
    acc_dists: Dict[object, float] = {}
    for step, i in enumerate(order):
        scan, out_vars, atom, _j = indexed[i]
        if step == 0:
            acc_rows = scan_ests[i]
            acc_dists = dict(var_dists[i])
        else:
            acc_rows, acc_dists = estimate_join(
                acc_rows, acc_dists, scan_ests[i], var_dists[i]
            )
        ordered.append(OrderedScan(scan, out_vars, atom, scan_ests[i], acc_rows))
    return JoinOrder(ordered, method, cost)


def _greedy_order(indexed, scan_ests, var_dists) -> Tuple[List[int], float]:
    """Cheapest start, then cheapest next join; deterministic tie-breaks."""
    remaining = list(range(len(indexed)))
    start = min(remaining, key=lambda i: (scan_ests[i], _tie_key(indexed[i])))
    remaining.remove(start)
    order = [start]
    acc_rows = scan_ests[start]
    acc_dists = dict(var_dists[start])
    cost = acc_rows
    while remaining:
        best_i = None
        best_est: Tuple = ()
        for i in remaining:
            est, _merged = estimate_join(
                acc_rows, acc_dists, scan_ests[i], var_dists[i]
            )
            candidate = (est, _tie_key(indexed[i]))
            if best_i is None or candidate < best_est:
                best_i, best_est = i, candidate
        remaining.remove(best_i)
        order.append(best_i)
        acc_rows, acc_dists = estimate_join(
            acc_rows, acc_dists, scan_ests[best_i], var_dists[best_i]
        )
        cost += acc_rows
    return order, cost


def _dp_order(indexed, scan_ests, var_dists) -> Tuple[List[int], float]:
    """Selinger-style DP over atom subsets; exact for the C_out metric."""
    n = len(indexed)
    # state: bitmask -> (cost, rows, distincts, order-tuple)
    states: Dict[int, Tuple[float, float, Dict[object, float], Tuple[int, ...]]] = {}
    for i in range(n):
        states[1 << i] = (scan_ests[i], scan_ests[i], var_dists[i], (i,))
    for size in range(1, n):
        current = [m for m in states if _popcount(m) == size]
        for mask in current:
            cost, rows, dists, order = states[mask]
            for i in range(n):
                bit = 1 << i
                if mask & bit:
                    continue
                est, merged = estimate_join(
                    rows, dists, scan_ests[i], var_dists[i]
                )
                new_cost = cost + est
                new_order = order + (i,)
                new_mask = mask | bit
                existing = states.get(new_mask)
                if (
                    existing is None
                    or (new_cost, new_order) < (existing[0], existing[3])
                ):
                    states[new_mask] = (new_cost, est, merged, new_order)
    full = (1 << n) - 1
    cost, _rows, _dists, order = states[full]
    return list(order), cost


def _popcount(mask: int) -> int:
    """Number of set bits (3.10-compatible spelling of ``int.bit_count``)."""
    return bin(mask).count("1")


def prefer_scan_probe(probe_est: float, build_est: float) -> bool:
    """Should this join skip the hash index and filter the scan directly?

    True when the probe side is so small relative to the build side that
    building (and caching) the index would dominate the join's cost on a
    cold data source. Warm sources with a cached index ignore the flag.
    """
    return probe_est * SCAN_PROBE_FACTOR < build_est
