"""The physical plan IR: interned scans, hash joins, filters, projections.

Plan nodes evaluate over rows of constant IDs (tuples of non-negative ints
from the process-wide :class:`~repro.core.symbols.SymbolTable`), never boxed
terms — the same discipline as :mod:`repro.core.views`, but generalized from
builtin-free view application to the full query surface (conjunctive queries
with builtins, and the σ/π/×/∪ algebra).

Operators:

* :class:`ScanNode` — one relation's extension with **build-side pushdown**:
  constant equalities and same-atom repeated-variable equalities are applied
  while scanning, before any join sees the rows; ``output`` then projects the
  scan down to the columns later operators need.
* :class:`HashJoinNode` — equi-join; the right side is hash-indexed on its
  key columns (index cached per data source when the right side is a scan).
* :class:`FilterNode` — a residual predicate at the earliest point where all
  the columns it mentions are bound.
* :class:`ProjectNode` — column picks plus :class:`Lit` literal columns.
* :class:`UnitNode` / :class:`UnionPlanNode` — the nullary row and union.

Every node renders itself for ``EXPLAIN`` (``repro.cli ... --explain``); the
rendering decodes IDs back to values through the owning symbol table, so the
output is readable while the runtime representation stays integer-only.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.exceptions import BuiltinError, ReproError


class PlanError(ReproError):
    """A query (or query fragment) the plan compiler cannot handle.

    Raised during compilation only; callers fall back to the boxed
    evaluators (the algebra interpreter keeps its recursive ``evaluate_boxed``
    exactly for this), so an unsupported construct degrades to the old path
    instead of failing.
    """


def _decode(table, cid: int):
    return table.constant_value(cid)


# -- predicates ----------------------------------------------------------------

class Predicate:
    """A row predicate; ``evaluate(row, table) -> bool``."""

    __slots__ = ()

    def evaluate(self, row: Tuple[int, ...], table) -> bool:
        raise NotImplementedError

    def explain(self, table) -> str:
        raise NotImplementedError


class ColEqualsConst(Predicate):
    """``row[col] == cid`` — an integer compare, no decoding."""

    __slots__ = ("col", "cid")

    def __init__(self, col: int, cid: int):
        self.col = col
        self.cid = cid

    def evaluate(self, row, table) -> bool:
        return row[self.col] == self.cid

    def explain(self, table) -> str:
        return f"col{self.col} = {_decode(table, self.cid)!r}"


class ColEqualsCol(Predicate):
    """``row[left] == row[right]`` — an integer compare, no decoding."""

    __slots__ = ("left", "right")

    def __init__(self, left: int, right: int):
        self.left = left
        self.right = right

    def evaluate(self, row, table) -> bool:
        return row[self.left] == row[self.right]

    def explain(self, table) -> str:
        return f"col{self.left} = col{self.right}"


#: Argument spec of a value-level predicate: ``("col", i)`` reads (and
#: decodes) column *i*; ``("val", v)`` is a literal Python value.
ArgSpec = Tuple[str, Any]


def _resolve_spec(spec: ArgSpec, row, table):
    kind, payload = spec
    if kind == "col":
        return table.constant_value(row[payload])
    return payload


def _explain_spec(spec: ArgSpec) -> str:
    kind, payload = spec
    return f"col{payload}" if kind == "col" else repr(payload)


class ComparePredicate(Predicate):
    """A σ comparison over decoded values (non-equality, or non-scan sides).

    Mirrors :class:`repro.algebra.conditions.Comparison`: heterogeneous
    comparisons (``TypeError``) fail the predicate rather than aborting.
    """

    __slots__ = ("lhs", "op", "rhs", "_fn")

    def __init__(self, lhs: ArgSpec, op: str, rhs: ArgSpec):
        from repro.algebra.conditions import _OPS

        if op not in _OPS:
            raise PlanError(f"unknown comparison operator: {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = rhs
        self._fn = _OPS[op]

    def evaluate(self, row, table) -> bool:
        try:
            return bool(
                self._fn(
                    _resolve_spec(self.lhs, row, table),
                    _resolve_spec(self.rhs, row, table),
                )
            )
        except TypeError:
            return False

    def explain(self, table) -> str:
        return f"{_explain_spec(self.lhs)} {self.op} {_explain_spec(self.rhs)}"


class BuiltinPredicate(Predicate):
    """A builtin body atom applied at the earliest point its columns bind.

    The builtin is looked up in the registry *per evaluation*, not captured
    at compile time, so re-registering a predicate under the same registry
    takes effect without invalidating cached plans.
    """

    __slots__ = ("registry", "name", "specs")

    def __init__(self, registry, name: str, specs: Tuple[ArgSpec, ...]):
        self.registry = registry
        self.name = name
        self.specs = specs

    def evaluate(self, row, table) -> bool:
        builtin = self.registry.get(self.name)
        if builtin is None:
            raise BuiltinError(f"unknown builtin: {self.name}")
        return builtin.check(
            _resolve_spec(spec, row, table) for spec in self.specs
        )

    def explain(self, table) -> str:
        inner = ", ".join(_explain_spec(s) for s in self.specs)
        return f"{self.name}({inner})"


class ConditionPredicate(Predicate):
    """Fallback for σ conditions with no faster translation (``Or``/``Not``).

    Decodes the whole row back to boxed constants and delegates to the
    original :class:`~repro.algebra.conditions.Condition` — correct for any
    condition, at boxed cost; only reached for condition shapes the compiler
    does not special-case.
    """

    __slots__ = ("condition",)

    def __init__(self, condition):
        self.condition = condition

    def evaluate(self, row, table) -> bool:
        from repro.model.terms import Constant

        boxed = tuple(Constant(table.constant_value(c)) for c in row)
        return self.condition.evaluate(boxed)

    def explain(self, table) -> str:
        return f"condition {self.condition!r}"


# -- plan nodes ----------------------------------------------------------------

class Lit:
    """A literal projection column: emits one interned constant."""

    __slots__ = ("cid",)

    def __init__(self, cid: int):
        self.cid = cid


class PlanNode:
    """Base class of physical plan nodes; ``width`` is the row arity."""

    __slots__ = ("width",)

    def explain_into(self, table, lines: List[str], depth: int) -> None:
        raise NotImplementedError


class ScanNode(PlanNode):
    """Scan one relation with pushed-down selections and column projection.

    * ``const_eq`` — ``(arg_position, constant_id)`` equalities applied while
      scanning (constants in the body atom, or σ(col = literal) pushed down);
    * ``dup_eq`` — ``(first_position, later_position)`` equalities from
      repeated variables within one atom (or same-scan σ(col = col));
    * ``output`` — argument positions the scan emits, in order.

    Facts whose arity differs from ``arity`` are skipped, mirroring the
    boxed :class:`~repro.algebra.ast.RelationScan`.
    """

    __slots__ = ("relation", "rid", "arity", "const_eq", "dup_eq", "output")

    def __init__(
        self,
        relation: str,
        rid: int,
        arity: int,
        const_eq: Tuple[Tuple[int, int], ...],
        dup_eq: Tuple[Tuple[int, int], ...],
        output: Tuple[int, ...],
    ):
        self.relation = relation
        self.rid = rid
        self.arity = arity
        self.const_eq = const_eq
        self.dup_eq = dup_eq
        self.output = output
        self.width = len(output)

    def cache_key(self) -> Tuple:
        """Identity of this scan's row set within one data source."""
        return (self.rid, self.arity, self.const_eq, self.dup_eq, self.output)

    def explain_into(self, table, lines, depth) -> None:
        parts = [f"scan {self.relation}/{self.arity}"]
        for pos, cid in self.const_eq:
            parts.append(f"[arg{pos} = {_decode(table, cid)!r}]")
        for first, later in self.dup_eq:
            parts.append(f"[arg{first} = arg{later}]")
        cols = ", ".join(f"arg{p}" for p in self.output)
        parts.append(f"-> ({cols})")
        lines.append("  " * depth + " ".join(parts))


class HashJoinNode(PlanNode):
    """Hash equi-join; output rows are ``left_row + right_row``.

    The right side is materialized and indexed on ``right_keys``; the left
    side streams and probes with ``left_keys``. Empty keys degrade to a
    cross product (the algebra's ×). When the right side is a
    :class:`ScanNode`, the executor caches the hash index on the data
    source, so repeated plans over one database build each index once.
    """

    __slots__ = ("left", "right", "left_keys", "right_keys")

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
    ):
        if len(left_keys) != len(right_keys):
            raise PlanError("join key lists must have equal length")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.width = left.width + right.width

    def explain_into(self, table, lines, depth) -> None:
        if self.left_keys:
            keys = ", ".join(
                f"left.col{l} = right.col{r}"
                for l, r in zip(self.left_keys, self.right_keys)
            )
            lines.append("  " * depth + f"hash-join [{keys}]")
        else:
            lines.append("  " * depth + "cross-product")
        self.left.explain_into(table, lines, depth + 1)
        self.right.explain_into(table, lines, depth + 1)


class FilterNode(PlanNode):
    """Apply one residual predicate to the child's rows."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.width = child.width

    def explain_into(self, table, lines, depth) -> None:
        lines.append("  " * depth + f"filter {self.predicate.explain(table)}")
        self.child.explain_into(table, lines, depth + 1)


class ProjectNode(PlanNode):
    """Pick/duplicate columns and emit literal columns; dedupes its output."""

    __slots__ = ("child", "columns")

    def __init__(self, child: PlanNode, columns: Tuple):
        self.child = child
        self.columns = columns
        self.width = len(columns)

    def explain_into(self, table, lines, depth) -> None:
        cols = ", ".join(
            f"col{c}" if isinstance(c, int) else repr(_decode(table, c.cid))
            for c in self.columns
        )
        lines.append("  " * depth + f"project ({cols})")
        self.child.explain_into(table, lines, depth + 1)


class UnitNode(PlanNode):
    """One empty row — the join seed for queries with no relational body."""

    __slots__ = ()

    def __init__(self):
        self.width = 0

    def explain_into(self, table, lines, depth) -> None:
        lines.append("  " * depth + "unit (one empty row)")


class UnionPlanNode(PlanNode):
    """Set union of same-width children (the algebra's ∪)."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[PlanNode]):
        self.children = tuple(children)
        if not self.children:
            raise PlanError("union of no children")
        self.width = self.children[0].width

    def explain_into(self, table, lines, depth) -> None:
        lines.append("  " * depth + f"union ({len(self.children)} branches)")
        for child in self.children:
            child.explain_into(table, lines, depth + 1)


class CompiledPlan:
    """A compiled physical plan plus the context needed to run and explain it.

    * ``kind`` — ``"cq"`` (answers decode to head facts) or ``"algebra"``
      (answers decode to positional rows);
    * ``prefilters`` — ground builtin atoms, checked once per execution
      against the empty row (kept out of compile time so a cached plan stays
      a pure function of the query, not of any one evaluation);
    * ``key`` — the alpha-equivalence cache key the plan was stored under.
    """

    __slots__ = (
        "kind", "root", "prefilters", "head_relation", "table", "key",
        "source_text",
    )

    def __init__(
        self,
        kind: str,
        root: PlanNode,
        prefilters: Tuple[Predicate, ...],
        head_relation: Optional[str],
        table,
        key: Tuple,
        source_text: str,
    ):
        self.kind = kind
        self.root = root
        self.prefilters = prefilters
        self.head_relation = head_relation
        self.table = table
        self.key = key
        self.source_text = source_text

    @property
    def width(self) -> int:
        return self.root.width

    def explain(self) -> str:
        """A human-readable rendering of the physical plan."""
        lines = [f"plan [{self.kind}] for: {self.source_text}"]
        for predicate in self.prefilters:
            lines.append(f"prefilter {predicate.explain(self.table)}")
        self.root.explain_into(self.table, lines, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CompiledPlan({self.kind!r}, width={self.width})"
