"""The physical plan IR: interned scans, hash joins, filters, projections.

Plan nodes evaluate over rows of constant IDs (tuples of non-negative ints
from the process-wide :class:`~repro.core.symbols.SymbolTable`), never boxed
terms — the same discipline as :mod:`repro.core.views`, but generalized from
builtin-free view application to the full query surface (conjunctive queries
with builtins, and the σ/π/×/∪ algebra).

Operators:

* :class:`ScanNode` — one relation's extension with **build-side pushdown**:
  constant equalities and same-atom repeated-variable equalities are applied
  while scanning, before any join sees the rows; ``output`` then projects the
  scan down to the columns later operators need.
* :class:`HashJoinNode` — equi-join; the right side is hash-indexed on its
  key columns (index cached per data source when the right side is a scan).
* :class:`FilterNode` — a residual predicate at the earliest point where all
  the columns it mentions are bound.
* :class:`ProjectNode` — column picks plus :class:`Lit` literal columns.
* :class:`UnitNode` / :class:`UnionPlanNode` — the nullary row and union.

Every node renders itself for ``EXPLAIN`` (``repro.cli ... --explain``); the
rendering decodes IDs back to values through the owning symbol table, so the
output is readable while the runtime representation stays integer-only.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.exceptions import BuiltinError, ReproError


class PlanError(ReproError):
    """A query (or query fragment) the plan compiler cannot handle.

    Raised during compilation only; callers fall back to the boxed
    evaluators (the algebra interpreter keeps its recursive ``evaluate_boxed``
    exactly for this), so an unsupported construct degrades to the old path
    instead of failing.
    """


def _decode(table, cid: int):
    return table.constant_value(cid)


# -- predicates ----------------------------------------------------------------

class Predicate:
    """A row predicate; ``evaluate(row, table) -> bool``."""

    __slots__ = ()

    def evaluate(self, row: Tuple[int, ...], table) -> bool:
        """Decide this predicate on one row of constant IDs."""
        raise NotImplementedError

    def explain(self, table) -> str:
        """Human-readable rendering, decoding IDs through *table*."""
        raise NotImplementedError


class ColEqualsConst(Predicate):
    """``row[col] == cid`` — an integer compare, no decoding."""

    __slots__ = ("col", "cid")

    def __init__(self, col: int, cid: int):
        self.col = col
        self.cid = cid

    def evaluate(self, row, table) -> bool:
        """Integer compare of one column against the interned constant."""
        return row[self.col] == self.cid

    def explain(self, table) -> str:
        """Render as ``colN = value`` with the constant decoded."""
        return f"col{self.col} = {_decode(table, self.cid)!r}"


class ColEqualsCol(Predicate):
    """``row[left] == row[right]`` — an integer compare, no decoding."""

    __slots__ = ("left", "right")

    def __init__(self, left: int, right: int):
        self.left = left
        self.right = right

    def evaluate(self, row, table) -> bool:
        """Integer compare of two columns of the row."""
        return row[self.left] == row[self.right]

    def explain(self, table) -> str:
        """Render as ``colL = colR``."""
        return f"col{self.left} = col{self.right}"


#: Argument spec of a value-level predicate: ``("col", i)`` reads (and
#: decodes) column *i*; ``("val", v)`` is a literal Python value.
ArgSpec = Tuple[str, Any]


def _resolve_spec(spec: ArgSpec, row, table):
    kind, payload = spec
    if kind == "col":
        return table.constant_value(row[payload])
    return payload


def _explain_spec(spec: ArgSpec) -> str:
    kind, payload = spec
    return f"col{payload}" if kind == "col" else repr(payload)


class ComparePredicate(Predicate):
    """A σ comparison over decoded values (non-equality, or non-scan sides).

    Mirrors :class:`repro.algebra.conditions.Comparison`: heterogeneous
    comparisons (``TypeError``) fail the predicate rather than aborting.
    """

    __slots__ = ("lhs", "op", "rhs", "_fn")

    def __init__(self, lhs: ArgSpec, op: str, rhs: ArgSpec):
        from repro.algebra.conditions import _OPS

        if op not in _OPS:
            raise PlanError(f"unknown comparison operator: {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = rhs
        self._fn = _OPS[op]

    def evaluate(self, row, table) -> bool:
        """Decoded-value comparison; incomparable types compare false."""
        try:
            return bool(
                self._fn(
                    _resolve_spec(self.lhs, row, table),
                    _resolve_spec(self.rhs, row, table),
                )
            )
        except TypeError:
            return False

    def explain(self, table) -> str:
        """Render as ``lhs op rhs`` over column/literal specs."""
        return f"{_explain_spec(self.lhs)} {self.op} {_explain_spec(self.rhs)}"


class BuiltinPredicate(Predicate):
    """A builtin body atom applied at the earliest point its columns bind.

    The builtin is looked up in the registry *per evaluation*, not captured
    at compile time, so re-registering a predicate under the same registry
    takes effect without invalidating cached plans.
    """

    __slots__ = ("registry", "name", "specs")

    def __init__(self, registry, name: str, specs: Tuple[ArgSpec, ...]):
        self.registry = registry
        self.name = name
        self.specs = specs

    def evaluate(self, row, table) -> bool:
        """Look the builtin up (per evaluation) and apply it to the row."""
        builtin = self.registry.get(self.name)
        if builtin is None:
            raise BuiltinError(f"unknown builtin: {self.name}")
        return builtin.check(
            _resolve_spec(spec, row, table) for spec in self.specs
        )

    def explain(self, table) -> str:
        """Render as ``name(args...)`` over column/literal specs."""
        inner = ", ".join(_explain_spec(s) for s in self.specs)
        return f"{self.name}({inner})"


class ConditionPredicate(Predicate):
    """Fallback for σ conditions with no faster translation (``Or``/``Not``).

    Decodes the whole row back to boxed constants and delegates to the
    original :class:`~repro.algebra.conditions.Condition` — correct for any
    condition, at boxed cost; only reached for condition shapes the compiler
    does not special-case.
    """

    __slots__ = ("condition",)

    def __init__(self, condition):
        self.condition = condition

    def evaluate(self, row, table) -> bool:
        """Decode the row to boxed constants and ask the condition."""
        from repro.model.terms import Constant

        boxed = tuple(Constant(table.constant_value(c)) for c in row)
        return self.condition.evaluate(boxed)

    def explain(self, table) -> str:
        """Render the wrapped boxed condition."""
        return f"condition {self.condition!r}"


# -- plan nodes ----------------------------------------------------------------

class Lit:
    """A literal projection column: emits one interned constant."""

    __slots__ = ("cid",)

    def __init__(self, cid: int):
        self.cid = cid


class PlanNode:
    """Base class of physical plan nodes; ``width`` is the row arity.

    ``est_rows`` is the optimizer's cardinality estimate for this operator's
    output (``None`` on statically compiled plans); EXPLAIN prints it and
    EXPLAIN ANALYZE pairs it with the measured actual.
    """

    __slots__ = ("width", "est_rows")

    def children(self) -> Tuple["PlanNode", ...]:
        """This node's child operators, in rendering order."""
        return ()

    def explain_line(self, table) -> str:
        """One line of EXPLAIN text for this operator (no indentation)."""
        raise NotImplementedError

    def explain_into(
        self, table, lines: List[str], depth: int, annotate=None
    ) -> None:
        """Render this subtree into *lines*, one indented line per node.

        *annotate*, when given, maps a node to a suffix string — the hook
        EXPLAIN ANALYZE uses to append ``(est=… actual=…)`` per operator.
        """
        line = "  " * depth + self.explain_line(table)
        if annotate is not None:
            suffix = annotate(self)
            if suffix:
                line += suffix
        lines.append(line)
        for child in self.children():
            child.explain_into(table, lines, depth + 1, annotate)


class ScanNode(PlanNode):
    """Scan one relation with pushed-down selections and column projection.

    * ``const_eq`` — ``(arg_position, constant_id)`` equalities applied while
      scanning (constants in the body atom, or σ(col = literal) pushed down);
    * ``dup_eq`` — ``(first_position, later_position)`` equalities from
      repeated variables within one atom (or same-scan σ(col = col));
    * ``output`` — argument positions the scan emits, in order.

    Facts whose arity differs from ``arity`` are skipped, mirroring the
    boxed :class:`~repro.algebra.ast.RelationScan`.
    """

    __slots__ = ("relation", "rid", "arity", "const_eq", "dup_eq", "output")

    def __init__(
        self,
        relation: str,
        rid: int,
        arity: int,
        const_eq: Tuple[Tuple[int, int], ...],
        dup_eq: Tuple[Tuple[int, int], ...],
        output: Tuple[int, ...],
    ):
        self.relation = relation
        self.rid = rid
        self.arity = arity
        self.const_eq = const_eq
        self.dup_eq = dup_eq
        self.output = output
        self.width = len(output)
        self.est_rows = None

    def cache_key(self) -> Tuple:
        """Identity of this scan's row set within one data source."""
        return (self.rid, self.arity, self.const_eq, self.dup_eq, self.output)

    def explain_line(self, table) -> str:
        """One line: relation/arity, pushdowns, and emitted columns."""
        parts = [f"scan {self.relation}/{self.arity}"]
        for pos, cid in self.const_eq:
            parts.append(f"[arg{pos} = {_decode(table, cid)!r}]")
        for first, later in self.dup_eq:
            parts.append(f"[arg{first} = arg{later}]")
        cols = ", ".join(f"arg{p}" for p in self.output)
        parts.append(f"-> ({cols})")
        return " ".join(parts)


class HashJoinNode(PlanNode):
    """Hash equi-join; output rows are ``left_row + right_row``.

    The right side is materialized and indexed on ``right_keys``; the left
    side streams and probes with ``left_keys``. Empty keys degrade to a
    cross product (the algebra's ×). When the right side is a
    :class:`ScanNode`, the executor caches the hash index on the data
    source, so repeated plans over one database build each index once.

    ``prefer_scan_probe`` is the optimizer's build-vs-probe verdict: when
    set (probe side estimated far smaller than the build side), a cold
    execution filters the scan's rows per probe key instead of building
    the full hash index; a warm source with a cached index ignores it.
    """

    __slots__ = ("left", "right", "left_keys", "right_keys", "prefer_scan_probe")

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
        prefer_scan_probe: bool = False,
    ):
        if len(left_keys) != len(right_keys):
            raise PlanError("join key lists must have equal length")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.prefer_scan_probe = prefer_scan_probe
        self.width = left.width + right.width
        self.est_rows = None

    def children(self) -> Tuple[PlanNode, ...]:
        """The build (right) and probe (left) inputs."""
        return (self.left, self.right)

    def explain_line(self, table) -> str:
        """One line: join keys (or cross-product) and probe strategy."""
        if self.left_keys:
            keys = ", ".join(
                f"left.col{l} = right.col{r}"
                for l, r in zip(self.left_keys, self.right_keys)
            )
            strategy = " probe=scan" if self.prefer_scan_probe else ""
            return f"hash-join [{keys}]{strategy}"
        return "cross-product"


class FilterNode(PlanNode):
    """Apply one residual predicate to the child's rows."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.width = child.width
        self.est_rows = None

    def children(self) -> Tuple[PlanNode, ...]:
        """The single filtered input."""
        return (self.child,)

    def explain_line(self, table) -> str:
        """One line: the residual predicate, decoded."""
        return f"filter {self.predicate.explain(table)}"


class ProjectNode(PlanNode):
    """Pick/duplicate columns and emit literal columns; dedupes its output."""

    __slots__ = ("child", "columns")

    def __init__(self, child: PlanNode, columns: Tuple):
        self.child = child
        self.columns = columns
        self.width = len(columns)
        self.est_rows = None

    def children(self) -> Tuple[PlanNode, ...]:
        """The single projected input."""
        return (self.child,)

    def explain_line(self, table) -> str:
        """One line: emitted columns and literal constants."""
        cols = ", ".join(
            f"col{c}" if isinstance(c, int) else repr(_decode(table, c.cid))
            for c in self.columns
        )
        return f"project ({cols})"


class UnitNode(PlanNode):
    """One empty row — the join seed for queries with no relational body."""

    __slots__ = ()

    def __init__(self):
        self.width = 0
        self.est_rows = None

    def explain_line(self, table) -> str:
        """One line: the nullary seed row."""
        return "unit (one empty row)"


class UnionPlanNode(PlanNode):
    """Set union of same-width children (the algebra's ∪).

    ``children`` is a plain tuple attribute (shadowing the base method — the
    attribute predates it and tests rely on it), so this node keeps its own
    ``explain_into`` instead of the ``explain_line`` protocol.
    """

    __slots__ = ("children",)

    def __init__(self, children: Sequence[PlanNode]):
        self.children = tuple(children)
        if not self.children:
            raise PlanError("union of no children")
        self.width = self.children[0].width
        self.est_rows = None

    def explain_into(self, table, lines, depth, annotate=None) -> None:
        """Render ``union`` and recurse into every branch."""
        line = "  " * depth + f"union ({len(self.children)} branches)"
        if annotate is not None:
            suffix = annotate(self)
            if suffix:
                line += suffix
        lines.append(line)
        for child in self.children:
            child.explain_into(table, lines, depth + 1, annotate)


class CompiledPlan:
    """A compiled physical plan plus the context needed to run and explain it.

    * ``kind`` — ``"cq"`` (answers decode to head facts) or ``"algebra"``
      (answers decode to positional rows);
    * ``prefilters`` — ground builtin atoms, checked once per execution
      against the empty row (kept out of compile time so a cached plan stays
      a pure function of the query, not of any one evaluation);
    * ``key`` — the alpha-equivalence cache key the plan was stored under;
    * ``optimizer_info`` — ``None`` for statically ordered plans, else a
      short description of how the optimizer ordered the joins (printed in
      the EXPLAIN header);
    * ``scan_nodes`` — every :class:`ScanNode` in the plan, in join order
      (the runtime-feedback loop reads observed scan cardinalities off it);
    * ``feedback`` — the :class:`repro.plan.optimizer.PlanFeedback` attached
      by the optimizer, or ``None`` on static plans.
    """

    __slots__ = (
        "kind", "root", "prefilters", "head_relation", "table", "key",
        "source_text", "optimizer_info", "scan_nodes", "feedback",
    )

    def __init__(
        self,
        kind: str,
        root: PlanNode,
        prefilters: Tuple[Predicate, ...],
        head_relation: Optional[str],
        table,
        key: Tuple,
        source_text: str,
        optimizer_info: Optional[str] = None,
        scan_nodes: Tuple[ScanNode, ...] = (),
        feedback=None,
    ):
        self.kind = kind
        self.root = root
        self.prefilters = prefilters
        self.head_relation = head_relation
        self.table = table
        self.key = key
        self.source_text = source_text
        self.optimizer_info = optimizer_info
        self.scan_nodes = scan_nodes
        self.feedback = feedback

    @property
    def width(self) -> int:
        """Number of columns the plan's answers carry."""
        return self.root.width

    def explain(self, annotate=None) -> str:
        """A human-readable rendering of the physical plan.

        *annotate* maps a plan node to a per-line suffix (EXPLAIN ANALYZE
        appends ``(est=… actual=…)`` through it); plain EXPLAIN passes none.
        """
        lines = [f"plan [{self.kind}] for: {self.source_text}"]
        if self.optimizer_info:
            lines.append(f"optimizer: {self.optimizer_info}")
        for predicate in self.prefilters:
            lines.append(f"prefilter {predicate.explain(self.table)}")
        self.root.explain_into(self.table, lines, 0, annotate)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CompiledPlan({self.kind!r}, width={self.width})"
