"""Logical→physical compilation and alpha-equivalence cache keys.

Both query languages compile into one IR (:mod:`repro.plan.ir`):

* **Conjunctive queries** — relational body atoms are ordered either by the
  cost-based optimizer (:func:`repro.plan.optimizer.choose_join_order`, used
  whenever the caller supplies a fact set to profile and the body has at
  least two relational atoms) or by the static syntactic order
  (:func:`repro.queries.evaluation.order_body`) when no statistics are
  available; the first atom becomes a :class:`~repro.plan.ir.ScanNode` and
  each later one the build side of a :class:`~repro.plan.ir.HashJoinNode`
  keyed on every variable already bound; constants and repeated variables
  push into the scans; builtin atoms become
  :class:`~repro.plan.ir.FilterNode` predicates at the earliest point all
  their variables are bound (ground builtins become per-execution
  prefilters). Optimized plans carry per-operator cardinality estimates, a
  :class:`~repro.plan.optimizer.PlanFeedback` for the adaptive loop, and
  ``prefer_scan_probe`` flags on joins whose probe side should stay tiny.
* **Algebra trees** — ``Selection*``-over-``Product*`` chains are flattened;
  ``Col = Col`` equalities across product leaves become hash-join keys,
  per-leaf equalities push into the scans, and every other condition becomes
  the cheapest applicable filter. Nodes outside the known vocabulary raise
  :class:`~repro.plan.ir.PlanError`, and the caller falls back to the boxed
  interpreter.

Cache keys quotient out variable naming: variables are numbered by first
occurrence (head first, then body in written order), constants intern to
symbol-table IDs. Two alpha-equivalent queries therefore render the same
key and share one compiled plan — the cache-hit property the per-world
evaluation loops rely on (tested in
``tests/property/test_plan_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ModelError
from repro.model.terms import Constant, Variable
from repro.plan.cache import shared_plan_cache
from repro.plan.ir import (
    BuiltinPredicate,
    ColEqualsCol,
    ColEqualsConst,
    ComparePredicate,
    CompiledPlan,
    ConditionPredicate,
    FilterNode,
    HashJoinNode,
    Lit,
    PlanError,
    PlanNode,
    Predicate,
    ProjectNode,
    ScanNode,
    UnionPlanNode,
    UnitNode,
)


# -- canonical keys ------------------------------------------------------------

class _VarNumbering:
    """Variables numbered −1, −2, ... by first occurrence (alpha-invariant)."""

    __slots__ = ("_ids",)

    def __init__(self):
        self._ids: Dict[Variable, int] = {}

    def token(self, variable: Variable) -> int:
        tok = self._ids.get(variable)
        if tok is None:
            tok = -(len(self._ids) + 1)
            self._ids[variable] = tok
        return tok


def _cq_key(query, table) -> Tuple:
    numbering = _VarNumbering()

    def term_token(term) -> int:
        if isinstance(term, Constant):
            return table.constant(term.value)
        return numbering.token(term)

    registry = query.builtins
    head = (
        table.relation(query.head.relation),
        tuple(term_token(a) for a in query.head.args),
    )
    body = tuple(
        (
            1 if registry.is_builtin(atom.relation) else 0,
            table.relation(atom.relation),
            tuple(term_token(a) for a in atom.args),
        )
        for atom in query.body
    )
    return ("cq", head, body, _registry_token(query))


def _registry_token(query) -> object:
    """Cache-key component identifying the *behavior* of used builtins.

    Builtin-free queries share plans across registries (token 0). For the
    rest, a plain function with no closure, defaults, or bound self is
    identified by its code object — every ``default_registry()`` call builds
    fresh lambdas, but lambdas from one source expression share one code
    object, so independently parsed queries still share plans. Anything
    fancier (closures, partials) falls back to the registry's identity,
    which is safe because the cached plan holds a reference to the registry
    — its id cannot be recycled while the entry lives.
    """
    builtins = query.builtin_body()
    if not builtins:
        return 0
    registry = query.builtins
    parts = []
    for name in sorted({atom.relation for atom in builtins}):
        builtin = registry.get(name)
        if builtin is None:
            return ("registry", id(registry))
        predicate = builtin.predicate
        code = getattr(predicate, "__code__", None)
        if (
            code is None
            or getattr(predicate, "__closure__", None)
            or getattr(predicate, "__defaults__", None)
            or getattr(predicate, "__kwdefaults__", None)
            or getattr(predicate, "__self__", None) is not None
        ):
            return ("registry", id(registry))
        parts.append((name, builtin.arity, id(code)))
    return ("builtins", tuple(parts))


def _condition_key(condition, table) -> Tuple:
    from repro.algebra.conditions import (
        And,
        Col,
        Comparison,
        Not,
        Or,
        TrueCondition,
    )

    def operand_token(operand) -> Tuple:
        if isinstance(operand, Col):
            return ("col", operand.index)
        value = operand.value if isinstance(operand, Constant) else operand
        return ("val", table.constant(value))

    if isinstance(condition, TrueCondition):
        return ("true",)
    if isinstance(condition, Comparison):
        return (
            "cmp",
            operand_token(condition.lhs),
            condition.op,
            operand_token(condition.rhs),
        )
    if isinstance(condition, And):
        return ("and",) + tuple(_condition_key(p, table) for p in condition.parts)
    if isinstance(condition, Or):
        return ("or",) + tuple(_condition_key(p, table) for p in condition.parts)
    if isinstance(condition, Not):
        return ("not", _condition_key(condition.part, table))
    raise PlanError(f"no canonical key for condition {condition!r}")


def _algebra_key(node, table) -> Tuple:
    from repro.algebra.ast import (
        Product,
        Projection,
        RelationScan,
        Selection,
        UnionNode,
    )

    if type(node) is RelationScan:
        return ("scan", table.relation(node.relation), node.arity)
    if type(node) is Selection:
        return (
            "sel",
            _condition_key(node.condition, table),
            _algebra_key(node.child, table),
        )
    if type(node) is Projection:
        columns = []
        for c in node.columns:
            if isinstance(c, int):
                columns.append(("col", c))
            elif isinstance(c, Constant):
                columns.append(("lit", table.constant(c.value)))
            else:
                raise PlanError(f"unsupported projection column {c!r}")
        return ("proj", tuple(columns), _algebra_key(node.child, table))
    if type(node) is Product:
        return (
            "prod",
            _algebra_key(node.left, table),
            _algebra_key(node.right, table),
        )
    if type(node) is UnionNode:
        return (
            "union",
            _algebra_key(node.left, table),
            _algebra_key(node.right, table),
        )
    raise PlanError(f"no plan translation for algebra node {type(node).__name__}")


def plan_key(query, table) -> Tuple:
    """The alpha-equivalence cache key of a query (CQ or algebra tree)."""
    from repro.algebra.ast import AlgebraQuery
    from repro.queries.conjunctive import ConjunctiveQuery

    try:
        if isinstance(query, ConjunctiveQuery):
            return _cq_key(query, table)
        if isinstance(query, AlgebraQuery):
            return ("ra", _algebra_key(query, table))
    except ModelError as exc:  # unhashable literal etc: let the boxed path try
        raise PlanError(str(exc)) from exc
    raise PlanError(f"not a plannable query: {type(query).__name__}")


# -- conjunctive-query compilation ---------------------------------------------

def _builtin_predicate(atom, registry, var_cols: Dict[Variable, int], table) -> Predicate:
    specs = []
    for term in atom.args:
        if isinstance(term, Constant):
            specs.append(("val", term.value))
        else:
            specs.append(("col", var_cols[term]))
    return BuiltinPredicate(registry, atom.relation, tuple(specs))


def _scan_for_atom(atom, table) -> Tuple[ScanNode, List[Variable]]:
    """A pushdown scan for one body atom, plus its output variables in order."""
    const_eq: List[Tuple[int, int]] = []
    dup_eq: List[Tuple[int, int]] = []
    first_pos: Dict[Variable, int] = {}
    output: List[int] = []
    out_vars: List[Variable] = []
    for i, term in enumerate(atom.args):
        if isinstance(term, Constant):
            const_eq.append((i, table.constant(term.value)))
        else:
            first = first_pos.get(term)
            if first is None:
                first_pos[term] = i
                output.append(i)
                out_vars.append(term)
            else:
                dup_eq.append((first, i))
    scan = ScanNode(
        atom.relation,
        table.relation(atom.relation),
        atom.arity,
        tuple(const_eq),
        tuple(dup_eq),
        tuple(output),
    )
    return scan, out_vars


def _compile_cq(
    query,
    table,
    key: Tuple,
    stats=None,
    overrides=None,
    feedback=None,
) -> CompiledPlan:
    """Compile one conjunctive query, cost-based when *stats* is given.

    With statistics (and at least two relational atoms) the join order comes
    from :func:`repro.plan.optimizer.choose_join_order`, per-operator
    ``est_rows`` are annotated, joins with tiny probe sides get
    ``prefer_scan_probe``, and the plan carries a
    :class:`~repro.plan.optimizer.PlanFeedback` (*feedback*, or a fresh one)
    for the adaptive loop; *overrides* are observed scan cardinalities from
    a previous execution, fed back during re-optimization. Without
    statistics the static ``order_body`` order is kept unchanged.
    """
    from repro.plan.optimizer import (
        FILTER_SELECTIVITY,
        PlanFeedback,
        choose_join_order,
        optimizer_counters,
        prefer_scan_probe,
    )
    from repro.queries.evaluation import order_body

    registry = query.builtins
    relational = query.relational_body()
    prefilters: List[Predicate] = []
    pending = []
    for atom in query.builtin_body():
        if atom.is_ground():
            prefilters.append(_builtin_predicate(atom, registry, {}, table))
        else:
            pending.append(atom)

    counters = optimizer_counters()
    optimized = stats is not None and len(relational) >= 2
    optimizer_info: Optional[str] = None
    if optimized:
        triples = []
        for atom in relational:
            scan, out_vars = _scan_for_atom(atom, table)
            triples.append((scan, out_vars, atom))
        order = choose_join_order(triples, stats, overrides)
        steps = [(o.scan, o.out_vars, o.scan_est, o.result_est) for o in order.ordered]
        counters.bump("plans_optimized")
        if feedback is None:
            feedback = PlanFeedback()
        optimizer_info = (
            f"{order.method} join order over {len(steps)} atoms, "
            f"est cost {order.total_cost:.0f}"
        )
        if feedback.reopt_count:
            optimizer_info += f" (reopt #{feedback.reopt_count})"
    else:
        steps = []
        for atom in order_body(relational):
            scan, out_vars = _scan_for_atom(atom, table)
            steps.append((scan, out_vars, None, None))
        feedback = None
        counters.bump("plans_static")

    root: Optional[PlanNode] = None
    var_cols: Dict[Variable, int] = {}
    width = 0
    scan_nodes: List[ScanNode] = []
    prev_est: Optional[float] = None
    for scan, out_vars, scan_est, result_est in steps:
        scan.est_rows = scan_est
        scan_nodes.append(scan)
        if root is None:
            root = scan
            for j, v in enumerate(out_vars):
                var_cols[v] = j
            width = scan.width
            prev_est = scan_est
        else:
            left_keys: List[int] = []
            right_keys: List[int] = []
            fresh: List[Tuple[int, Variable]] = []
            for j, v in enumerate(out_vars):
                bound_col = var_cols.get(v)
                if bound_col is None:
                    fresh.append((j, v))
                else:
                    left_keys.append(bound_col)
                    right_keys.append(j)
            probe_flag = False
            if (
                optimized
                and left_keys
                and prev_est is not None
                and scan_est is not None
                and prefer_scan_probe(prev_est, scan_est)
            ):
                probe_flag = True
                counters.bump("scan_probe_flags")
            root = HashJoinNode(
                root, scan, tuple(left_keys), tuple(right_keys), probe_flag
            )
            root.est_rows = result_est
            for j, v in fresh:
                var_cols[v] = width + j
            width += scan.width
            prev_est = result_est
        still = []
        for b in pending:
            if all(v in var_cols for v in b.variables()):
                root = FilterNode(
                    root, _builtin_predicate(b, registry, var_cols, table)
                )
                if prev_est is not None:
                    prev_est = prev_est * FILTER_SELECTIVITY
                    root.est_rows = prev_est
            else:
                still.append(b)
        pending = still

    if pending:
        # Safety (checked at query construction) should make this impossible.
        raise PlanError(f"builtin atoms with unbindable variables: {pending}")
    if root is None:
        root = UnitNode()

    columns = []
    for term in query.head.args:
        if isinstance(term, Constant):
            columns.append(Lit(table.constant(term.value)))
        else:
            col = var_cols.get(term)
            if col is None:
                raise PlanError(f"unsafe head variable {term} survived safety")
            columns.append(col)
    root = ProjectNode(root, tuple(columns))
    root.est_rows = prev_est
    return CompiledPlan(
        "cq", root, tuple(prefilters), query.head.relation, table, key,
        str(query), optimizer_info=optimizer_info,
        scan_nodes=tuple(scan_nodes), feedback=feedback,
    )


# -- algebra compilation -------------------------------------------------------

def _strip_selections(node) -> Tuple[List, object]:
    """Peel nested selections: ``(conditions, core)`` with core not a Selection."""
    from repro.algebra.ast import Selection

    conditions: List = []
    while type(node) is Selection:
        conditions.append(node.condition)
        node = node.child
    return conditions, node


def _product_leaves(node) -> List:
    from repro.algebra.ast import Product

    if type(node) is Product:
        return _product_leaves(node.left) + _product_leaves(node.right)
    return [node]


def _flatten_and(conditions) -> List:
    from repro.algebra.conditions import And, TrueCondition

    flat: List = []
    stack = list(conditions)
    while stack:
        condition = stack.pop(0)
        if isinstance(condition, And):
            stack = list(condition.parts) + stack
        elif isinstance(condition, TrueCondition):
            continue
        else:
            flat.append(condition)
    return flat


def _literal_value(operand):
    return operand.value if isinstance(operand, Constant) else operand


def _compile_select_product(conditions, core, table) -> PlanNode:
    """``Selection*`` over ``Product*``: flatten, push down, hash-join."""
    from repro.algebra.conditions import Col, Comparison

    leaves = _product_leaves(core)
    compiled = [_compile_algebra(leaf, table) for leaf in leaves]
    widths = [n.width for n in compiled]
    offsets: List[int] = []
    acc = 0
    for w in widths:
        offsets.append(acc)
        acc += w
    total_width = acc

    def leaf_of(col: int) -> int:
        if not 0 <= col < total_width:
            raise PlanError(f"σ condition references column {col} out of range")
        for i in range(len(leaves) - 1, -1, -1):
            if col >= offsets[i]:
                return i
        raise PlanError("unreachable")

    # Pushdown accumulators for leaves that are plain scans.
    extra_const: Dict[int, List[Tuple[int, int]]] = {}
    extra_dup: Dict[int, List[Tuple[int, int]]] = {}
    join_pairs: List[Tuple[int, int]] = []      # cross-leaf equalities (lo, hi)
    filters: List[Tuple[int, Predicate]] = []   # (needed_width, predicate)

    def pushable(i: int) -> bool:
        return type(compiled[i]) is ScanNode

    for condition in _flatten_and(conditions):
        if isinstance(condition, Comparison):
            lhs, rhs, op = condition.lhs, condition.rhs, condition.op
            lhs_col = isinstance(lhs, Col)
            rhs_col = isinstance(rhs, Col)
            if lhs_col and rhs_col and op in ("=", "=="):
                lo, hi = sorted((lhs.index, rhs.index))
                li, hi_leaf = leaf_of(lo), leaf_of(hi)
                if li == hi_leaf and pushable(li):
                    extra_dup.setdefault(li, []).append(
                        (lo - offsets[li], hi - offsets[li])
                    )
                elif li == hi_leaf:
                    filters.append((hi + 1, ColEqualsCol(lo, hi)))
                else:
                    join_pairs.append((lo, hi))
                continue
            if lhs_col != rhs_col and op in ("=", "=="):
                col = lhs.index if lhs_col else rhs.index
                value = _literal_value(rhs if lhs_col else lhs)
                try:
                    cid = table.constant(value)
                except ModelError as exc:
                    raise PlanError(str(exc)) from exc
                i = leaf_of(col)
                if pushable(i):
                    extra_const.setdefault(i, []).append((col - offsets[i], cid))
                else:
                    filters.append((col + 1, ColEqualsConst(col, cid)))
                continue
            # Non-equality (or literal-literal) comparison → value filter.
            lhs_spec = ("col", lhs.index) if lhs_col else ("val", _literal_value(lhs))
            rhs_spec = ("col", rhs.index) if rhs_col else ("val", _literal_value(rhs))
            needed_cols = []
            if lhs_col:
                needed_cols.append(lhs.index)
            if rhs_col:
                needed_cols.append(rhs.index)
            needed = 1 + max(needed_cols, default=-1)
            filters.append((needed, ComparePredicate(lhs_spec, op, rhs_spec)))
            continue
        # Or/Not/unknown conditions run boxed over the complete row.
        filters.append((total_width, ConditionPredicate(condition)))

    for i, extras in extra_const.items():
        scan = compiled[i]
        compiled[i] = ScanNode(
            scan.relation, scan.rid, scan.arity,
            scan.const_eq + tuple(sorted(extras)),
            scan.dup_eq, scan.output,
        )
    for i, extras in extra_dup.items():
        scan = compiled[i]
        compiled[i] = ScanNode(
            scan.relation, scan.rid, scan.arity, scan.const_eq,
            scan.dup_eq + tuple(sorted(extras)), scan.output,
        )

    filters.sort(key=lambda pair: pair[0])

    def attach_ready(root: PlanNode, acc_width: int) -> PlanNode:
        while filters and filters[0][0] <= acc_width:
            root = FilterNode(root, filters.pop(0)[1])
        return root

    root = compiled[0]
    acc_width = widths[0]
    root = attach_ready(root, acc_width)
    for i in range(1, len(compiled)):
        hi_lo, hi_hi = offsets[i], offsets[i] + widths[i]
        left_keys: List[int] = []
        right_keys: List[int] = []
        remaining: List[Tuple[int, int]] = []
        for lo, hi in join_pairs:
            if hi_lo <= hi < hi_hi and lo < hi_lo:
                left_keys.append(lo)
                right_keys.append(hi - hi_lo)
            else:
                remaining.append((lo, hi))
        join_pairs = remaining
        root = HashJoinNode(
            root, compiled[i], tuple(left_keys), tuple(right_keys)
        )
        acc_width += widths[i]
        root = attach_ready(root, acc_width)
    if join_pairs or filters:
        raise PlanError("σ conditions left unattached after join build")
    return root


def _compile_algebra(node, table) -> PlanNode:
    from repro.algebra.ast import (
        Product,
        Projection,
        RelationScan,
        Selection,
        UnionNode,
    )

    if type(node) is RelationScan:
        return ScanNode(
            node.relation,
            table.relation(node.relation),
            node.arity,
            (),
            (),
            tuple(range(node.arity)),
        )
    if type(node) is Selection or type(node) is Product:
        conditions, core = _strip_selections(node)
        return _compile_select_product(conditions, core, table)
    if type(node) is Projection:
        child = _compile_algebra(node.child, table)
        columns = []
        for c in node.columns:
            if isinstance(c, int):
                if not 0 <= c < child.width:
                    raise PlanError(f"projection column {c} out of range")
                columns.append(c)
            elif isinstance(c, Constant):
                try:
                    columns.append(Lit(table.constant(c.value)))
                except ModelError as exc:
                    raise PlanError(str(exc)) from exc
            else:
                raise PlanError(f"unsupported projection column {c!r}")
        return ProjectNode(child, tuple(columns))
    if type(node) is UnionNode:
        children: List[PlanNode] = []
        stack = [node]
        while stack:
            item = stack.pop()
            if type(item) is UnionNode:
                stack.append(item.right)
                stack.append(item.left)
            else:
                children.append(_compile_algebra(item, table))
        children.reverse()
        return UnionPlanNode(children)
    raise PlanError(f"no plan translation for algebra node {type(node).__name__}")


# -- entry points --------------------------------------------------------------

def compile_query(query, table, stats=None) -> CompiledPlan:
    """Compile one query (CQ or algebra) to a :class:`CompiledPlan`."""
    key = plan_key(query, table)
    return compile_with_key(query, table, key, stats=stats)


def compile_with_key(
    query, table, key: Tuple, stats=None, overrides=None, feedback=None
) -> CompiledPlan:
    """Compile with a precomputed cache key; see :func:`_compile_cq`.

    Statistics only influence conjunctive queries — algebra trees keep their
    structural order (their columns are positional, so reordering products
    would change answers, not just cost).
    """
    from repro.queries.conjunctive import ConjunctiveQuery

    if isinstance(query, ConjunctiveQuery):
        return _compile_cq(
            query, table, key, stats=stats, overrides=overrides,
            feedback=feedback,
        )
    root = _compile_algebra(query, table)
    return CompiledPlan("algebra", root, (), None, table, key, repr(query))


def plan_for(query, cache=None, table=None, facts=None) -> CompiledPlan:
    """The cached plan for *query*, compiling on first sight.

    *facts* (an :class:`~repro.core.factset.IFactSet`) turns on cost-based
    compilation: first sight profiles the fact set through the statistics
    catalog and optimizes against it, and a cache hit whose runtime feedback
    marked the plan stale is **re-optimized** here — recompiled against the
    current statistics with the observed scan cardinalities overriding the
    estimates that proved wrong. Cache hits on healthy plans stay a pure
    dictionary lookup.

    Raises :class:`~repro.plan.ir.PlanError` when the query cannot be
    planned; callers with a boxed fallback catch it.
    """
    from repro.core.symbols import global_table

    if table is None:
        table = global_table()
    if cache is None:
        cache = shared_plan_cache()
    key = plan_key(query, table)
    hit, plan = cache.lookup(key)
    if hit:
        feedback = plan.feedback
        if feedback is not None and feedback.stale and facts is not None:
            from repro.plan.optimizer import PlanFeedback, optimizer_counters
            from repro.plan.statistics import statistics_for

            plan = compile_with_key(
                query, table, key,
                stats=statistics_for(facts),
                overrides=dict(feedback.observed),
                feedback=PlanFeedback(reopt_count=feedback.reopt_count + 1),
            )
            optimizer_counters().bump("reoptimizations")
            cache.store(key, plan)
        return plan
    stats = None
    if facts is not None:
        from repro.plan.statistics import statistics_for

        stats = statistics_for(facts)
    plan = compile_with_key(query, table, key, stats=stats)
    cache.store(key, plan)
    return plan
