"""Plan execution over interned fact sets, with per-database operator caches.

A :class:`PlanDataSource` wraps one :class:`~repro.core.factset.IFactSet`
and memoizes the two expensive physical artifacts:

* **scan row sets** — the pushdown-filtered, projected rows of each distinct
  :class:`~repro.plan.ir.ScanNode`, keyed by the scan's shape;
* **hash-join indexes** — the build-side hash tables, keyed by scan shape ×
  key columns.

Data sources themselves are cached process-wide keyed by the fact set's
*value* (an ``IFactSet`` hashes by its frozenset of fact IDs), so evaluating
many queries over one database — or re-evaluating a workload over the same
possible worlds — reuses every index instead of rebuilding it per call.
This is the structural win ``benchmarks/bench_e18_plan.py`` measures: the
backtracking evaluator re-derives candidate sets per query per world, while
the plan path amortizes them across the whole workload.

The decode back to boxed answers (:class:`~repro.model.atoms.Atom` facts for
conjunctive queries, rows of :class:`~repro.model.terms.Constant` for the
algebra) happens once per *distinct answer*, not per derivation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.factset import IFactSet
from repro.plan.ir import (
    CompiledPlan,
    FilterNode,
    HashJoinNode,
    Lit,
    PlanError,
    PlanNode,
    ProjectNode,
    ScanNode,
    UnionPlanNode,
    UnitNode,
)

Rows = Tuple[Tuple[int, ...], ...]

_EMPTY_ROWS: Rows = ()


class PlanDataSource:
    """Cached scans and join indexes over one immutable fact set."""

    __slots__ = ("facts", "table", "_scans", "_indexes")

    def __init__(self, facts: IFactSet):
        self.facts = facts
        self.table = facts.table
        self._scans: Dict[Tuple, Rows] = {}
        self._indexes: Dict[Tuple, Dict[Tuple[int, ...], Rows]] = {}

    def scan_rows(self, node: ScanNode) -> Rows:
        """The scan's output rows (computed once per scan shape)."""
        key = node.cache_key()
        rows = self._scans.get(key)
        if rows is None:
            rows = self._build_scan(node)
            self._scans[key] = rows
        return rows

    def _build_scan(self, node: ScanNode) -> Rows:
        grouped = self.facts.grouped().get(node.rid)
        if not grouped:
            return _EMPTY_ROWS
        arity = node.arity
        const_eq = node.const_eq
        dup_eq = node.dup_eq
        output = node.output
        seen: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()
        for args in grouped:
            if len(args) != arity:
                continue
            ok = True
            for pos, cid in const_eq:
                if args[pos] != cid:
                    ok = False
                    break
            if ok:
                for first, later in dup_eq:
                    if args[first] != args[later]:
                        ok = False
                        break
            if ok:
                seen.setdefault(tuple(args[p] for p in output))
        return tuple(seen)

    def join_index(
        self, node: ScanNode, key_cols: Tuple[int, ...]
    ) -> Dict[Tuple[int, ...], Rows]:
        """Hash index of a scan's rows on *key_cols* (cached)."""
        cache_key = (node.cache_key(), key_cols)
        index = self._indexes.get(cache_key)
        if index is None:
            index = _build_index(self.scan_rows(node), key_cols)
            self._indexes[cache_key] = index
        return index

    def cached_artifacts(self) -> Tuple[int, int]:
        """``(scan_count, index_count)`` currently memoized."""
        return len(self._scans), len(self._indexes)


def _build_index(
    rows: Sequence[Tuple[int, ...]], key_cols: Tuple[int, ...]
) -> Dict[Tuple[int, ...], Rows]:
    building: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
    for row in rows:
        building.setdefault(tuple(row[c] for c in key_cols), []).append(row)
    return {key: tuple(group) for key, group in building.items()}


# -- the process-wide data-source cache ----------------------------------------

#: Bound on retained data sources. Each holds scan rows and hash indexes for
#: one database; per-world evaluation loops cycle through far fewer live
#: worlds than this at a time.
MAX_DATA_SOURCES = 128

_SOURCES: "OrderedDict[IFactSet, PlanDataSource]" = OrderedDict()
_SOURCES_LOCK = threading.Lock()


def data_source_for(facts: IFactSet) -> PlanDataSource:
    """The shared :class:`PlanDataSource` for a fact set (LRU, by value).

    Two databases with equal content share one source — re-enumerated
    possible worlds land on already-built indexes.
    """
    with _SOURCES_LOCK:
        source = _SOURCES.get(facts)
        if source is not None:
            _SOURCES.move_to_end(facts)
            return source
        source = PlanDataSource(facts)
        _SOURCES[facts] = source
        while len(_SOURCES) > MAX_DATA_SOURCES:
            _SOURCES.popitem(last=False)
        return source


def data_source_count() -> int:
    """How many data sources are currently cached (for ``--stats``)."""
    with _SOURCES_LOCK:
        return len(_SOURCES)


def clear_data_sources() -> None:
    """Drop every cached data source (tests and benchmarks reset with it)."""
    with _SOURCES_LOCK:
        _SOURCES.clear()


# -- the interpreter -----------------------------------------------------------

def _run(node: PlanNode, source: PlanDataSource) -> Sequence[Tuple[int, ...]]:
    node_type = type(node)
    if node_type is ScanNode:
        return source.scan_rows(node)
    if node_type is HashJoinNode:
        left_rows = _run(node.left, source)
        if not left_rows:
            return _EMPTY_ROWS
        right = node.right
        if type(right) is ScanNode:
            index = source.join_index(right, node.right_keys)
        else:
            index = _build_index(_run(right, source), node.right_keys)
        if not index:
            return _EMPTY_ROWS
        left_keys = node.left_keys
        out: List[Tuple[int, ...]] = []
        if left_keys:
            get = index.get
            for lrow in left_rows:
                matches = get(tuple(lrow[c] for c in left_keys))
                if matches:
                    for rrow in matches:
                        out.append(lrow + rrow)
        else:
            right_rows = index.get((), _EMPTY_ROWS)
            for lrow in left_rows:
                for rrow in right_rows:
                    out.append(lrow + rrow)
        return out
    if node_type is FilterNode:
        predicate = node.predicate
        table = source.table
        return [
            row
            for row in _run(node.child, source)
            if predicate.evaluate(row, table)
        ]
    if node_type is ProjectNode:
        columns = node.columns
        seen: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()
        for row in _run(node.child, source):
            seen.setdefault(
                tuple(
                    row[c] if isinstance(c, int) else c.cid for c in columns
                )
            )
        return tuple(seen)
    if node_type is UnitNode:
        return ((),)
    if node_type is UnionPlanNode:
        seen = OrderedDict()
        for child in node.children:
            for row in _run(child, source):
                seen.setdefault(row)
        return tuple(seen)
    raise PlanError(f"unknown plan node {node_type.__name__}")


def execute_plan(
    plan: CompiledPlan, source: PlanDataSource
) -> FrozenSet[Tuple[int, ...]]:
    """Run a compiled plan; answers are rows of constant IDs."""
    table = source.table
    for predicate in plan.prefilters:
        if not predicate.evaluate((), table):
            return frozenset()  # boxed-ok: ints
    return frozenset(_run(plan.root, source))  # boxed-ok: ints


# -- boxed entry points --------------------------------------------------------

def evaluate(query, database) -> FrozenSet:
    """``Q(D)`` for a conjunctive query, through the plan pipeline.

    The drop-in replacement for
    :func:`repro.queries.evaluation.evaluate_backtracking` — identical
    answers (differentially tested), compiled once per alpha-equivalence
    class, indexes shared per database.
    """
    from repro.model.atoms import Atom
    from repro.plan.compiler import plan_for

    plan = plan_for(query)
    source = data_source_for(database.core())
    rows = execute_plan(plan, source)
    constant_value = plan.table.constant_value
    head_relation = plan.head_relation
    return frozenset(
        Atom(head_relation, tuple(constant_value(c) for c in row))
        for row in rows
    )


def evaluate_rows(algebra_query, database) -> FrozenSet[Tuple]:
    """Algebra-tree evaluation to rows of boxed constants.

    Raises :class:`~repro.plan.ir.PlanError` for trees outside the compiled
    vocabulary; :meth:`repro.algebra.ast.AlgebraQuery.evaluate` catches it
    and falls back to the boxed interpreter.
    """
    from repro.model.terms import Constant
    from repro.plan.compiler import plan_for

    plan = plan_for(algebra_query)
    source = data_source_for(database.core())
    rows = execute_plan(plan, source)
    constant_value = plan.table.constant_value
    return frozenset(
        tuple(Constant(constant_value(c)) for c in row) for row in rows
    )


def explain(query, table=None) -> str:
    """The EXPLAIN rendering of a query's (cached) physical plan."""
    from repro.plan.compiler import plan_for

    return plan_for(query, table=table).explain()
