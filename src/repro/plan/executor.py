"""Plan execution over interned fact sets, with per-database operator caches.

A :class:`PlanDataSource` wraps one :class:`~repro.core.factset.IFactSet`
and memoizes the two expensive physical artifacts:

* **scan row sets** — the pushdown-filtered, projected rows of each distinct
  :class:`~repro.plan.ir.ScanNode`, keyed by the scan's shape;
* **hash-join indexes** — the build-side hash tables, keyed by scan shape ×
  key columns.

Data sources themselves are cached process-wide keyed by the fact set's
*value* (an ``IFactSet`` hashes by its frozenset of fact IDs), so evaluating
many queries over one database — or re-evaluating a workload over the same
possible worlds — reuses every index instead of rebuilding it per call.
This is the structural win ``benchmarks/bench_e18_plan.py`` measures: the
backtracking evaluator re-derives candidate sets per query per world, while
the plan path amortizes them across the whole workload.

The decode back to boxed answers (:class:`~repro.model.atoms.Atom` facts for
conjunctive queries, rows of :class:`~repro.model.terms.Constant` for the
algebra) happens once per *distinct answer*, not per derivation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cache import cache_registry
from repro.cache.runtime import LRUMemo
from repro.core.factset import IFactSet
from repro.plan.ir import (
    CompiledPlan,
    FilterNode,
    HashJoinNode,
    Lit,
    PlanError,
    PlanNode,
    ProjectNode,
    ScanNode,
    UnionPlanNode,
    UnitNode,
)

Rows = Tuple[Tuple[int, ...], ...]

_EMPTY_ROWS: Rows = ()


class PlanDataSource:
    """Cached scans and join indexes over one immutable fact set."""

    __slots__ = ("facts", "table", "_scans", "_indexes")

    def __init__(self, facts: IFactSet):
        self.facts = facts
        self.table = facts.table
        self._scans: Dict[Tuple, Rows] = {}
        self._indexes: Dict[Tuple, Dict[Tuple[int, ...], Rows]] = {}

    def scan_rows(self, node: ScanNode) -> Rows:
        """The scan's output rows (computed once per scan shape)."""
        key = node.cache_key()
        rows = self._scans.get(key)
        if rows is None:
            rows = self._build_scan(node)
            self._scans[key] = rows
        return rows

    def _build_scan(self, node: ScanNode) -> Rows:
        grouped = self.facts.grouped().get(node.rid)
        if not grouped:
            return _EMPTY_ROWS
        arity = node.arity
        const_eq = node.const_eq
        dup_eq = node.dup_eq
        output = node.output
        seen: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()
        for args in grouped:
            if len(args) != arity:
                continue
            ok = True
            for pos, cid in const_eq:
                if args[pos] != cid:
                    ok = False
                    break
            if ok:
                for first, later in dup_eq:
                    if args[first] != args[later]:
                        ok = False
                        break
            if ok:
                seen.setdefault(tuple(args[p] for p in output))
        return tuple(seen)

    def peek_scan_rows(self, node: ScanNode) -> Optional[Rows]:
        """The scan's rows if this source already built them, else ``None``.

        The runtime-feedback pass reads actual scan cardinalities through
        this so recording observations never triggers work the plan's own
        execution did not already pay for.
        """
        return self._scans.get(node.cache_key())

    def join_index(
        self, node: ScanNode, key_cols: Tuple[int, ...]
    ) -> Dict[Tuple[int, ...], Rows]:
        """Hash index of a scan's rows on *key_cols* (cached)."""
        cache_key = (node.cache_key(), key_cols)
        index = self._indexes.get(cache_key)
        if index is None:
            index = _build_index(self.scan_rows(node), key_cols)
            self._indexes[cache_key] = index
        return index

    def cached_index(
        self, node: ScanNode, key_cols: Tuple[int, ...]
    ) -> Optional[Dict[Tuple[int, ...], Rows]]:
        """An already-built hash index, or ``None`` (never builds one)."""
        return self._indexes.get((node.cache_key(), key_cols))

    def cached_artifacts(self) -> Tuple[int, int]:
        """``(scan_count, index_count)`` currently memoized."""
        return len(self._scans), len(self._indexes)


def _build_index(
    rows: Sequence[Tuple[int, ...]], key_cols: Tuple[int, ...]
) -> Dict[Tuple[int, ...], Rows]:
    building: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
    for row in rows:
        building.setdefault(tuple(row[c] for c in key_cols), []).append(row)
    return {key: tuple(group) for key, group in building.items()}


# -- the process-wide data-source cache ----------------------------------------

#: Bound on retained data sources. Each holds scan rows and hash indexes for
#: one database; per-world evaluation loops cycle through far fewer live
#: worlds than this at a time.
MAX_DATA_SOURCES = 128


def _source_sizeof(facts: IFactSet, source: PlanDataSource) -> int:
    """Price a data source by its world: rows and indexes scale with facts.

    Scan rows and hash indexes are materialized lazily, so an exact figure
    would drift after store time; a per-fact estimate (row tuples plus an
    index entry's dict overhead) keeps accounting stable and monotone in
    world size, which is what budget-driven eviction needs.
    """
    return 256 + 160 * len(facts)


_SOURCES = cache_registry().enroll(
    LRUMemo(
        maxsize=MAX_DATA_SOURCES, name="plan.data_sources", sizeof=_source_sizeof
    )
)


def data_source_for(facts: IFactSet) -> PlanDataSource:
    """The shared :class:`PlanDataSource` for a fact set (LRU, by value).

    Two databases with equal content share one source — re-enumerated
    possible worlds land on already-built indexes. Keyed by the fact set
    itself, so the invalidation bus retires an entry by key match when its
    world is retired.
    """
    return _SOURCES.get_or_create(facts, lambda: PlanDataSource(facts))


def data_source_count() -> int:
    """How many data sources are currently cached (for ``--stats``)."""
    return len(_SOURCES)


def clear_data_sources() -> None:
    """Drop every cached data source (tests and benchmarks reset with it)."""
    _SOURCES.clear()


def discard_data_source(facts: IFactSet) -> bool:
    """Drop one fact set's cached data source, if present.

    The shard layer's invalidation hook: a retired registry snapshot's
    fragments will never be scanned again, so their scan rows and join
    indexes can leave the LRU early instead of aging out. Kept callable
    directly, but the invalidation bus reaches the same entries by key
    match on the retired fact sets.
    """
    return _SOURCES.discard(facts)


# -- the interpreter -----------------------------------------------------------

def _scan_probe_join(
    node: HashJoinNode,
    left_rows: Sequence[Tuple[int, ...]],
    source: PlanDataSource,
) -> Sequence[Tuple[int, ...]]:
    """Join a tiny probe side against a scan without building its hash index.

    The optimizer's ``prefer_scan_probe`` path for cold data sources: the
    build side's rows are filtered once against the probe keys, grouping
    only the matching rows, so a huge build relation probed by a handful of
    rows costs one pass instead of a full (and cached) index build.
    """
    right_rows = source.scan_rows(node.right)
    left_keys = node.left_keys
    right_keys = node.right_keys
    probe_keys = {tuple(lrow[c] for c in left_keys) for lrow in left_rows}
    matched: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
    for rrow in right_rows:
        key = tuple(rrow[c] for c in right_keys)
        if key in probe_keys:
            matched.setdefault(key, []).append(rrow)
    out: List[Tuple[int, ...]] = []
    get = matched.get
    for lrow in left_rows:
        matches = get(tuple(lrow[c] for c in left_keys))
        if matches:
            for rrow in matches:
                out.append(lrow + rrow)
    return out


def _run(node: PlanNode, source: PlanDataSource) -> Sequence[Tuple[int, ...]]:
    node_type = type(node)
    if node_type is ScanNode:
        return source.scan_rows(node)
    if node_type is HashJoinNode:
        left_rows = _run(node.left, source)
        if not left_rows:
            return _EMPTY_ROWS
        right = node.right
        if type(right) is ScanNode:
            if (
                node.prefer_scan_probe
                and source.cached_index(right, node.right_keys) is None
            ):
                return _scan_probe_join(node, left_rows, source)
            index = source.join_index(right, node.right_keys)
        else:
            index = _build_index(_run(right, source), node.right_keys)
        if not index:
            return _EMPTY_ROWS
        left_keys = node.left_keys
        out: List[Tuple[int, ...]] = []
        if left_keys:
            get = index.get
            for lrow in left_rows:
                matches = get(tuple(lrow[c] for c in left_keys))
                if matches:
                    for rrow in matches:
                        out.append(lrow + rrow)
        else:
            right_rows = index.get((), _EMPTY_ROWS)
            for lrow in left_rows:
                for rrow in right_rows:
                    out.append(lrow + rrow)
        return out
    if node_type is FilterNode:
        predicate = node.predicate
        table = source.table
        return [
            row
            for row in _run(node.child, source)
            if predicate.evaluate(row, table)
        ]
    if node_type is ProjectNode:
        columns = node.columns
        seen: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()
        for row in _run(node.child, source):
            seen.setdefault(
                tuple(
                    row[c] if isinstance(c, int) else c.cid for c in columns
                )
            )
        return tuple(seen)
    if node_type is UnitNode:
        return ((),)
    if node_type is UnionPlanNode:
        seen = OrderedDict()
        for child in node.children:
            for row in _run(child, source):
                seen.setdefault(row)
        return tuple(seen)
    raise PlanError(f"unknown plan node {node_type.__name__}")


def record_feedback(
    plan: CompiledPlan, source: PlanDataSource, result_count: int
) -> None:
    """Fold one execution's observations into the plan's feedback loop.

    Only free observations are taken: scan cardinalities come off the data
    source's already-built caches (:meth:`PlanDataSource.peek_scan_rows`)
    and the result count is the length the caller already has. A q-error
    beyond the re-optimization threshold flips ``feedback.stale`` — the plan
    cache re-optimizes on its next hit.
    """
    from repro.plan.optimizer import optimizer_counters

    feedback = plan.feedback
    if feedback is None:
        return
    counters = optimizer_counters()
    for scan in plan.scan_nodes:
        rows = source.peek_scan_rows(scan)
        if rows is None:
            continue
        actual = len(rows)
        feedback.observed[scan.cache_key()] = actual
        counters.record_q_error(feedback.record(scan.est_rows, actual))
    if plan.root.est_rows is not None:
        counters.record_q_error(
            feedback.record(plan.root.est_rows, result_count)
        )


def execute_plan(
    plan: CompiledPlan, source: PlanDataSource
) -> FrozenSet[Tuple[int, ...]]:
    """Run a compiled plan; answers are rows of constant IDs."""
    table = source.table
    for predicate in plan.prefilters:
        if not predicate.evaluate((), table):
            return frozenset()  # boxed-ok: ints
    rows = frozenset(_run(plan.root, source))  # boxed-ok: ints
    if plan.feedback is not None:
        record_feedback(plan, source, len(rows))
    return rows


# -- boxed entry points --------------------------------------------------------

def evaluate(query, database) -> FrozenSet:
    """``Q(D)`` for a conjunctive query, through the plan pipeline.

    The drop-in replacement for
    :func:`repro.queries.evaluation.evaluate_backtracking` — identical
    answers (differentially tested), compiled once per alpha-equivalence
    class, indexes shared per database.
    """
    from repro.model.atoms import Atom
    from repro.plan.compiler import plan_for

    core = database.core()
    plan = plan_for(query, facts=core)
    source = data_source_for(core)
    rows = execute_plan(plan, source)
    constant_value = plan.table.constant_value
    head_relation = plan.head_relation
    return frozenset(
        Atom(head_relation, tuple(constant_value(c) for c in row))
        for row in rows
    )


def evaluate_rows(algebra_query, database) -> FrozenSet[Tuple]:
    """Algebra-tree evaluation to rows of boxed constants.

    Raises :class:`~repro.plan.ir.PlanError` for trees outside the compiled
    vocabulary; :meth:`repro.algebra.ast.AlgebraQuery.evaluate` catches it
    and falls back to the boxed interpreter.
    """
    from repro.model.terms import Constant
    from repro.plan.compiler import plan_for

    core = database.core()
    plan = plan_for(algebra_query, facts=core)
    source = data_source_for(core)
    rows = execute_plan(plan, source)
    constant_value = plan.table.constant_value
    return frozenset(
        tuple(Constant(constant_value(c)) for c in row) for row in rows
    )


def format_est(value: float) -> str:
    """Render a cardinality estimate for EXPLAIN (integers above ten)."""
    if value >= 10 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.2f}"


def _estimate_suffix(node: PlanNode) -> str:
    est = node.est_rows
    if est is None:
        return ""
    return f"  (est={format_est(est)} rows)"


def explain(query, table=None, database=None) -> str:
    """The EXPLAIN rendering of a query's (cached) physical plan.

    With a *database*, the plan is compiled cost-based against its
    statistics and each operator line carries the optimizer's cardinality
    estimate; without one the rendering is the static plan, unchanged.
    """
    from repro.plan.compiler import plan_for

    facts = database.core() if database is not None else None
    plan = plan_for(query, table=table, facts=facts)
    if plan.optimizer_info:
        return plan.explain(annotate=_estimate_suffix)
    return plan.explain()
