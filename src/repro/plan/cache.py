"""The canonical-form plan cache.

Compiled plans are pure functions of the query's *canonical form* — the
alpha-equivalence key rendered by :mod:`repro.plan.compiler` — so one cache
entry serves every variable-renaming of a query. The cache itself reuses the
engine's :class:`~repro.confidence.engine.memo.LRUMemo` (thread-safe LRU
with hit/miss/eviction counters); its stats surface in ``repro.cli --stats``
JSON and in the mediator service's ``stats()`` snapshot.
"""

from __future__ import annotations

from typing import Dict

from repro.confidence.engine.memo import CacheStats, LRUMemo

#: Default capacity of the shared plan cache. Plans are tiny (a handful of
#: nodes), so the bound exists to cap pathological query-generation loops,
#: not memory in normal use.
DEFAULT_PLAN_CACHE_SIZE = 1024

_SHARED_PLANS = LRUMemo(maxsize=DEFAULT_PLAN_CACHE_SIZE)


def shared_plan_cache() -> LRUMemo:
    """The process-wide plan cache used by every query path by default."""
    return _SHARED_PLANS


def plan_cache_stats() -> CacheStats:
    """Hit/miss/eviction counters of the shared plan cache."""
    return _SHARED_PLANS.stats()


def plan_cache_stats_dict() -> Dict[str, object]:
    """The same counters as a JSON-serializable dict (for ``--stats``)."""
    stats = plan_cache_stats()
    out: Dict[str, object] = dict(stats._asdict())
    out["hit_rate"] = stats.hit_rate
    return out
