"""The canonical-form plan cache.

Compiled plans are pure functions of the query's *canonical form* — the
alpha-equivalence key rendered by :mod:`repro.plan.compiler` — so one cache
entry serves every variable-renaming of a query. The cache itself is an
:class:`~repro.cache.runtime.LRUMemo` from the unified cache runtime,
enrolled in the process-wide registry as ``"plan.plans"`` — under the
global byte budget and the invalidation bus like every other shared
cache; its stats surface in ``repro.cli --stats`` JSON, the registry's
``stats()["cache"]`` tree, and the mediator service's snapshot.

Plan entries carry no tags: a compiled plan depends only on the query's
canonical form (plus optimizer feedback, handled by recompile-on-staleness
in the compiler), never on any particular world, so registry diffs have
nothing to retire here.
"""

from __future__ import annotations

from typing import Dict

from repro.cache import cache_registry
from repro.cache.runtime import CacheStats, LRUMemo

#: Default capacity of the shared plan cache. Plans are tiny (a handful of
#: nodes), so the bound exists to cap pathological query-generation loops,
#: not memory in normal use.
DEFAULT_PLAN_CACHE_SIZE = 1024

_SHARED_PLANS = cache_registry().enroll(
    LRUMemo(maxsize=DEFAULT_PLAN_CACHE_SIZE, name="plan.plans")
)


def shared_plan_cache() -> LRUMemo:
    """The process-wide plan cache used by every query path by default."""
    return _SHARED_PLANS


def plan_cache_stats() -> CacheStats:
    """Hit/miss/eviction counters of the shared plan cache."""
    return _SHARED_PLANS.stats()


def plan_cache_stats_dict() -> Dict[str, object]:
    """The same counters as a JSON-serializable dict (for ``--stats``)."""
    stats = plan_cache_stats()
    out: Dict[str, object] = dict(stats._asdict())
    out["hit_rate"] = stats.hit_rate
    return out
