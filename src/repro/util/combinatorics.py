"""Exact combinatorics used by the counting algorithms.

Everything here is integer-exact (no floating point): confidences computed
from these counts are returned as :class:`fractions.Fraction` by the callers,
which is what lets the benchmark for Example 5.1 match the paper's closed
forms *exactly* rather than approximately.
"""

from __future__ import annotations

import math
from itertools import chain, combinations, product
from typing import Iterable, Iterator, Sequence, Tuple, TypeVar

T = TypeVar("T")


def binomial(n: int, k: int) -> int:
    """Binomial coefficient C(n, k); zero outside the usual range.

    >>> binomial(5, 2)
    10
    >>> binomial(3, 5)
    0
    """
    if k < 0 or k > n or n < 0:
        return 0
    return math.comb(n, k)


def multinomial(counts: Sequence[int]) -> int:
    """Multinomial coefficient (sum counts)! / prod(counts!).

    >>> multinomial([2, 1, 1])
    12
    """
    if any(c < 0 for c in counts):
        return 0
    total = sum(counts)
    result = 1
    remaining = total
    for c in counts:
        result *= math.comb(remaining, c)
        remaining -= c
    return result


def powerset(items: Iterable[T]) -> Iterator[Tuple[T, ...]]:
    """All subsets of *items* as tuples, smallest first.

    >>> list(powerset([1, 2]))
    [(), (1,), (2,), (1, 2)]
    """
    seq = list(items)
    return chain.from_iterable(combinations(seq, r) for r in range(len(seq) + 1))


def subsets_of_size(items: Iterable[T], size: int) -> Iterator[Tuple[T, ...]]:
    """All subsets of *items* with exactly *size* elements."""
    return combinations(list(items), size)


def subsets_of_size_at_least(items: Iterable[T], minimum: int) -> Iterator[Tuple[T, ...]]:
    """All subsets of *items* with at least *minimum* elements.

    This is the iteration underlying the set 𝒰 of allowable sound-subset
    combinations in Theorem 4.1: subsets ``u ⊆ v`` with ``|u| ≥ s·|v|``.

    >>> sorted(subsets_of_size_at_least([1, 2], 1))
    [(1,), (2,), (1, 2)]
    """
    seq = list(items)
    lo = max(0, minimum)
    return chain.from_iterable(combinations(seq, r) for r in range(lo, len(seq) + 1))


def count_vectors(limits: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All integer vectors (n_1, ..., n_g) with 0 <= n_j <= limits[j].

    Used to iterate over per-signature-block occupancy counts when counting
    the 0/1 solutions of the linear system Γ of Section 5.1.

    >>> list(count_vectors([1, 2]))
    [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
    """
    ranges = [range(limit + 1) for limit in limits]
    return iter(product(*ranges))
