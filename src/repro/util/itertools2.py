"""Small iteration helpers shared across the library."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")
H = TypeVar("H", bound=Hashable)


def first(iterable: Iterable[T], default: Optional[T] = None) -> Optional[T]:
    """Return the first element of *iterable*, or *default* if it is empty."""
    for item in iterable:
        return item
    return default


def unique_everseen(iterable: Iterable[H]) -> Iterator[H]:
    """Yield elements in order, skipping any already yielded.

    >>> list(unique_everseen([1, 2, 1, 3, 2]))
    [1, 2, 3]
    """
    seen = set()
    for item in iterable:
        if item not in seen:
            seen.add(item)
            yield item


def pairwise_distinct(items: Iterable[H]) -> bool:
    """True when no element of *items* occurs twice."""
    seen = set()
    for item in items:
        if item in seen:
            return False
        seen.add(item)
    return True
