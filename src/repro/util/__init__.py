"""Utility subpackage: combinatorics and small iteration helpers.

These helpers back the possible-world enumeration and solution-counting
machinery in :mod:`repro.consistency` and :mod:`repro.confidence`.
"""

from repro.util.combinatorics import (
    binomial,
    count_vectors,
    multinomial,
    powerset,
    subsets_of_size,
    subsets_of_size_at_least,
)
from repro.util.itertools2 import first, pairwise_distinct, unique_everseen

__all__ = [
    "binomial",
    "count_vectors",
    "multinomial",
    "powerset",
    "subsets_of_size",
    "subsets_of_size_at_least",
    "first",
    "pairwise_distinct",
    "unique_everseen",
]
