"""Serialization of collections/databases and the command-line interface."""

from repro.io.serialization import (
    dumps_collection,
    dumps_database,
    load_collection,
    load_database,
    loads_collection,
    loads_database,
    save_collection,
    save_database,
)

__all__ = [
    "dumps_collection",
    "loads_collection",
    "load_collection",
    "save_collection",
    "dumps_database",
    "loads_database",
    "load_database",
    "save_database",
]
