"""Text serialization for source collections and databases.

A line-oriented, human-editable format (the CLI's on-disk representation)::

    # comments and blank lines are ignored
    source S1 completeness=1/2 soundness=0.5
    view V1(x) <- R(x)
    fact V1("a")
    fact V1("b")

    source S2 completeness=0.5 soundness=1/2
    view V2(x) <- R(x)
    fact V2("b")

Each ``source`` line opens a descriptor; the following ``view`` line is
mandatory and ``fact`` lines populate its extension. Databases serialize as
plain ``fact`` lines, one per fact. Round-tripping is exact: bounds are
rendered as fractions, constants via the parser's literal syntax.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Tuple

from repro.exceptions import ParseError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.model.terms import Constant
from repro.queries.builtins import BuiltinRegistry, default_registry
from repro.queries.parser import parse_fact, parse_rule
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor, as_bound


def _render_value(value) -> str:
    """A constant value in the parser's literal syntax."""
    if isinstance(value, str):
        return '"' + value.replace('"', "") + '"'
    return str(value)


def _render_fact(fact: Atom) -> str:
    inner = ", ".join(_render_value(a.value) for a in fact.args)
    return f"{fact.relation}({inner})"


def dumps_database(database: GlobalDatabase) -> str:
    """Serialize a database as one ``fact`` line per fact, sorted."""
    lines = [f"fact {_render_fact(f)}" for f in sorted(database)]
    return "\n".join(lines) + ("\n" if lines else "")


def loads_database(text: str) -> GlobalDatabase:
    """Parse a database serialized by :func:`dumps_database`."""
    facts: List[Atom] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if not line.startswith("fact "):
            raise ParseError(f"line {line_number}: expected 'fact ...', got {raw!r}")
        facts.append(parse_fact(line[len("fact "):]))
    return GlobalDatabase(facts)


def dumps_collection(collection: SourceCollection) -> str:
    """Serialize a source collection in the line format above."""
    chunks: List[str] = []
    for source in collection:
        lines = [
            f"source {source.name} "
            f"completeness={source.completeness_bound} "
            f"soundness={source.soundness_bound}",
            f"view {source.view}",
        ]
        lines += [f"fact {_render_fact(f)}" for f in sorted(source.extension)]
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + ("\n" if chunks else "")


def _parse_source_line(line: str, line_number: int) -> Tuple[str, Fraction, Fraction]:
    parts = line.split()
    if len(parts) != 4:
        raise ParseError(
            f"line {line_number}: expected "
            f"'source NAME completeness=C soundness=S', got {line!r}"
        )
    name = parts[1]
    bounds = {}
    for token in parts[2:]:
        if "=" not in token:
            raise ParseError(f"line {line_number}: bad bound token {token!r}")
        key, _, value = token.partition("=")
        if key not in ("completeness", "soundness"):
            raise ParseError(f"line {line_number}: unknown bound {key!r}")
        bounds[key] = as_bound(value)
    if set(bounds) != {"completeness", "soundness"}:
        raise ParseError(
            f"line {line_number}: both completeness= and soundness= required"
        )
    return name, bounds["completeness"], bounds["soundness"]


def loads_collection(
    text: str, builtins: Optional[BuiltinRegistry] = None
) -> SourceCollection:
    """Parse a collection serialized by :func:`dumps_collection`."""
    registry = builtins if builtins is not None else default_registry()
    sources: List[SourceDescriptor] = []
    current: Optional[dict] = None

    def flush():
        nonlocal current
        if current is None:
            return
        if current["view"] is None:
            raise ParseError(f"source {current['name']}: missing view line")
        sources.append(
            SourceDescriptor(
                current["view"],
                current["facts"],
                current["completeness"],
                current["soundness"],
                name=current["name"],
            )
        )
        current = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("source "):
            flush()
            name, completeness, soundness = _parse_source_line(line, line_number)
            current = {
                "name": name,
                "completeness": completeness,
                "soundness": soundness,
                "view": None,
                "facts": [],
            }
        elif line.startswith("view "):
            if current is None:
                raise ParseError(f"line {line_number}: view before any source")
            if current["view"] is not None:
                raise ParseError(
                    f"line {line_number}: duplicate view for source "
                    f"{current['name']}"
                )
            current["view"] = parse_rule(line[len("view "):], registry)
        elif line.startswith("fact "):
            if current is None:
                raise ParseError(f"line {line_number}: fact before any source")
            current["facts"].append(parse_fact(line[len("fact "):]))
        else:
            raise ParseError(f"line {line_number}: unrecognized line {raw!r}")
    flush()
    return SourceCollection(sources)


def load_collection(path: str, builtins: Optional[BuiltinRegistry] = None) -> SourceCollection:
    """Read a collection from a file."""
    with open(path) as handle:
        return loads_collection(handle.read(), builtins)


def save_collection(collection: SourceCollection, path: str) -> None:
    """Write a collection to a file."""
    with open(path, "w") as handle:
        handle.write(dumps_collection(collection))


def load_database(path: str) -> GlobalDatabase:
    """Read a database from a file of ``fact`` lines."""
    with open(path) as handle:
        return loads_database(handle.read())


def save_database(database: GlobalDatabase, path: str) -> None:
    """Write a database to a file of ``fact`` lines."""
    with open(path, "w") as handle:
        handle.write(dumps_database(database))
