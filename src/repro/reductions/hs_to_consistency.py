"""Theorem 3.2: HS* reduces to CONSISTENCY.

Each subset A_i becomes a source with the identity view V_i(x) ← R(x),
extension {V_i(a) : a ∈ A_i}, completeness bound 1/K and soundness bound
1/|A_i|. A possible database D maps to the hitting set {a : R(a) ∈ D};
conversely a hitting set A' yields the witness D = {R(a) : a ∈ A'}.

Because the images are identity-view collections, this reduction composed
with :func:`repro.consistency.identity.check_identity` is an (exponential
in general, but often fast) hitting-set solver — exactly the
cross-validation experiment E3 runs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, Optional, Tuple

from repro.exceptions import ReductionError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import identity_view
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.reductions.hitting_set import HSStarInstance

GLOBAL_RELATION = "R"


def hs_star_to_collection(instance: HSStarInstance) -> SourceCollection:
    """Build the Theorem 3.2 source collection for an HS* instance."""
    if instance.k == 0:
        raise ReductionError("K must be positive for the 1/K completeness bound")
    sources = []
    for i, subset in enumerate(instance.subsets, start=1):
        view = identity_view(f"V{i}", GLOBAL_RELATION, 1)
        extension = [Atom(f"V{i}", (element,)) for element in sorted(subset, key=repr)]
        sources.append(
            SourceDescriptor(
                view,
                extension,
                completeness_bound=Fraction(1, instance.k),
                soundness_bound=Fraction(1, len(subset)),
                name=f"S{i}",
            )
        )
    return SourceCollection(sources)


def database_to_hitting_set(database: GlobalDatabase) -> FrozenSet:
    """CONSISTENCY witness → HS* solution: ``{a : R(a) ∈ D}``."""
    return frozenset(
        fact.args[0].value for fact in database.extension(GLOBAL_RELATION)
    )


def hitting_set_to_database(solution: FrozenSet) -> GlobalDatabase:
    """HS* solution → CONSISTENCY witness: ``{R(a) : a ∈ A'}``."""
    return GlobalDatabase(Atom(GLOBAL_RELATION, (element,)) for element in solution)


def solve_hs_star_via_consistency(
    instance: HSStarInstance,
) -> Optional[FrozenSet]:
    """Decide HS* by deciding CONSISTENCY of the reduced collection.

    Returns a hitting set of size ≤ K or ``None``. The returned set is
    *verified* against the instance before being handed back.
    """
    from repro.consistency.identity import check_identity

    collection = hs_star_to_collection(instance)
    result = check_identity(collection)
    if not result.consistent:
        return None
    solution = database_to_hitting_set(result.witness)
    if not instance.is_hitting_set(solution):
        raise ReductionError(
            f"reduction produced an invalid hitting set {set(solution)!r} "
            f"for {instance!r} — this indicates a bug"
        )
    return solution
