"""Problem reductions of Section 3: HS, HS*, and CONSISTENCY."""

from repro.reductions.hitting_set import (
    HittingSetInstance,
    HSStarInstance,
    minimum_hitting_set,
    solve_exact,
    solve_greedy,
)
from repro.reductions.hs_star import (
    hs_to_hs_star,
    map_solution_back,
    map_solution_forward,
)
from repro.reductions.hs_to_consistency import (
    GLOBAL_RELATION,
    database_to_hitting_set,
    hitting_set_to_database,
    hs_star_to_collection,
    solve_hs_star_via_consistency,
)

__all__ = [
    "HittingSetInstance",
    "HSStarInstance",
    "solve_exact",
    "solve_greedy",
    "minimum_hitting_set",
    "hs_to_hs_star",
    "map_solution_back",
    "map_solution_forward",
    "hs_star_to_collection",
    "database_to_hitting_set",
    "hitting_set_to_database",
    "solve_hs_star_via_consistency",
    "GLOBAL_RELATION",
]
