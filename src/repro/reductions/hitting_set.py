"""HITTING SET and its special case HS* (Section 3, Theorem 3.2).

HS: given subsets A_1..A_n of a finite set S and K ≤ |S|, is there A ⊆ S
with |A| ≤ K hitting every A_i? HS* additionally requires A_n to be a
singleton. Both an exact branch-and-bound solver and the classical greedy
approximation are provided; the exact solver is the ground truth for the
reduction round-trip experiments (E3).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ReductionError


class HittingSetInstance:
    """An instance (C = {A_1..A_n}, K) of HITTING SET.

    >>> inst = HittingSetInstance([{1, 2}, {2, 3}], 1)
    >>> inst.is_hitting_set({2})
    True
    """

    __slots__ = ("subsets", "universe", "k")

    def __init__(self, subsets: Iterable[Iterable], k: int):
        self.subsets: Tuple[FrozenSet, ...] = tuple(frozenset(a) for a in subsets)
        if not self.subsets:
            raise ReductionError("HITTING SET requires at least one subset")
        for i, a in enumerate(self.subsets):
            if not a:
                raise ReductionError(f"subset A_{i + 1} is empty (never hittable)")
        self.universe: FrozenSet = frozenset().union(*self.subsets)
        if k < 0:
            raise ReductionError(f"K must be non-negative: {k}")
        self.k = k

    @property
    def n(self) -> int:
        return len(self.subsets)

    def is_hitting_set(self, candidate: Iterable) -> bool:
        """Does *candidate* intersect every subset and respect |A| ≤ K?"""
        a = frozenset(candidate)
        return len(a) <= self.k and all(a & subset for subset in self.subsets)

    def __repr__(self) -> str:
        return f"HittingSetInstance(n={self.n}, |S|={len(self.universe)}, K={self.k})"


class HSStarInstance(HittingSetInstance):
    """HS*: the last subset must be a singleton."""

    def __init__(self, subsets: Iterable[Iterable], k: int):
        super().__init__(subsets, k)
        if len(self.subsets[-1]) != 1:
            raise ReductionError(
                f"HS* requires the last subset to be a singleton, got "
                f"{set(self.subsets[-1])!r}"
            )


def solve_exact(instance: HittingSetInstance) -> Optional[FrozenSet]:
    """A hitting set of size ≤ K, or ``None`` — branch and bound.

    Branches on the elements of an unhit subset of minimum size; prunes when
    the budget is exhausted. Complete: explores every way to hit each
    uncovered subset.
    """
    subsets = sorted(instance.subsets, key=len)

    best: List[Optional[FrozenSet]] = [None]

    def search(chosen: Set, index_hint: int) -> bool:
        unhit = [a for a in subsets if not (a & chosen)]
        if not unhit:
            best[0] = frozenset(chosen)
            return True
        if len(chosen) >= instance.k:
            return False
        target = min(unhit, key=len)
        for element in sorted(target, key=repr):
            chosen.add(element)
            if search(chosen, index_hint + 1):
                return True
            chosen.remove(element)
        return False

    search(set(), 0)
    return best[0]


def solve_greedy(instance: HittingSetInstance) -> FrozenSet:
    """Greedy ln(n)-approximation: repeatedly pick the element hitting the
    most uncovered subsets. May exceed K; callers compare its size to the
    exact optimum (the E3 baseline)."""
    uncovered = list(instance.subsets)
    chosen: Set = set()
    while uncovered:
        counts: dict = {}
        for subset in uncovered:
            for element in subset:
                counts[element] = counts.get(element, 0) + 1
        element = max(sorted(counts, key=repr), key=lambda e: counts[e])
        chosen.add(element)
        uncovered = [a for a in uncovered if element not in a]
    return frozenset(chosen)


def minimum_hitting_set(subsets: Iterable[Iterable]) -> FrozenSet:
    """The minimum-cardinality hitting set (binary search over K)."""
    probe = HittingSetInstance(subsets, 0)
    lo, hi = 1, len(probe.universe)
    best: Optional[FrozenSet] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        solution = solve_exact(HittingSetInstance(subsets, mid))
        if solution is not None:
            best = solution
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise ReductionError("no hitting set exists (unreachable for valid input)")
    return best
