"""Lemma 3.3: HITTING SET reduces to HS*.

Given an HS instance (C, K) over S, add a brand-new element a, the singleton
subset {a}, and raise the budget to K + 1. Solutions map back and forth by
adding/removing a.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.exceptions import ReductionError
from repro.reductions.hitting_set import HittingSetInstance, HSStarInstance


def fresh_element(instance: HittingSetInstance):
    """An element guaranteed outside the instance's universe."""
    candidate = "_hs_star_fresh"
    while candidate in instance.universe:
        candidate += "_"
    return candidate


def hs_to_hs_star(instance: HittingSetInstance) -> Tuple[HSStarInstance, object]:
    """The Lemma 3.3 transformation; returns (HS* instance, fresh element a)."""
    a = fresh_element(instance)
    subsets = list(instance.subsets) + [frozenset([a])]
    return HSStarInstance(subsets, instance.k + 1), a


def map_solution_back(solution: FrozenSet, fresh: object) -> FrozenSet:
    """HS* solution → HS solution: drop the fresh element."""
    if fresh not in solution:
        raise ReductionError(
            "HS* solution must contain the fresh element (it hits the "
            "singleton subset)"
        )
    return solution - {fresh}


def map_solution_forward(solution: FrozenSet, fresh: object) -> FrozenSet:
    """HS solution → HS* solution: add the fresh element."""
    return solution | {fresh}
