"""``repro.resilience``: per-source availability under the mediator.

The paper's mediator answers from sources that are only *partially* sound
and complete; this package extends that stance to runtime availability —
a source that is down is a source whose annotation cannot currently be
trusted, and the mediator answers from what the remaining annotations
still entail. See ``docs/resilience.md``. Layering:

* :mod:`~repro.resilience.breaker` — closed/open/half-open circuit
  breakers with EWMA error-rate and latency tracking, explicit clocking.
* :mod:`~repro.resilience.manager` — the per-batch availability pass:
  concurrent per-source probes, per-source timeouts, hedged retries,
  breaker bookkeeping; produces a :class:`ProbeReport`.
* :mod:`~repro.resilience.degrade` — the semantics: demote a lost
  source's annotation to ⟨c=0, s=0⟩ and grade answers (``certain`` vs
  downgraded-to-``possible``) against the weakened collection.
* :mod:`~repro.resilience.chaos` — deterministic scripted outages
  (crash / partition / error / slow / heal) for tests, the CLI, and the
  E22 chaos benchmark.

The per-source fault *injection* itself lives with the other gateways in
:mod:`repro.service.faults` (:class:`~repro.service.faults.PerSourceGateway`).
"""

from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.chaos import (
    ChaosEvent,
    ChaosRunner,
    ChaosSchedule,
    ChaosSpecError,
)
from repro.resilience.degrade import (
    GUARANTEE_CERTAIN,
    GUARANTEE_POSSIBLE,
    demote,
    downgraded,
    grade_answers,
)
from repro.resilience.manager import (
    ProbeReport,
    ResilienceConfig,
    ResilienceManager,
)

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ChaosEvent",
    "ChaosRunner",
    "ChaosSchedule",
    "ChaosSpecError",
    "GUARANTEE_CERTAIN",
    "GUARANTEE_POSSIBLE",
    "demote",
    "downgraded",
    "grade_answers",
    "ProbeReport",
    "ResilienceConfig",
    "ResilienceManager",
]
