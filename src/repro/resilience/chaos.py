"""Deterministic chaos schedules: scripted per-source outages.

A :class:`ChaosSchedule` is a time-ordered list of :class:`ChaosEvent`\\ s
— "at *t* seconds, source *X* starts crashing / partitions / heals". The
:class:`ChaosRunner` applies due events to a
:class:`~repro.service.faults.PerSourceGateway` whenever the driver calls
:meth:`ChaosRunner.advance` with the current (loop or virtual) time.
Nothing in here sleeps or reads a wall clock: the *driver* owns time, so
the same schedule replayed against the same seed produces the same fault
trace, the same breaker transitions, and the same degraded answers —
the property the E22 chaos benchmark and the CI ``chaos-smoke`` job
assert on.

Schedules parse from a compact CLI spec (times in milliseconds)::

    0:S1:crash, 400:S1:ok, 600:S2:error:0.8, 900:S2:slow:20, 1200:S2:partition

Modes: ``crash``, ``partition``, ``ok`` (heal), ``error:<rate>``,
``slow:<latency-ms>``, ``flaky:<rate>`` (alias of ``error``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.service.faults import FaultPolicy, PerSourceGateway


class ChaosSpecError(ReproError):
    """A chaos schedule spec that does not parse."""


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted policy flip: at *at* seconds, *source* gets *policy*.

    ``policy=None`` heals the source (all faults off).
    """

    at: float
    source: str
    policy: Optional[FaultPolicy]
    mode: str = ""

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("chaos events cannot be scheduled before t=0")


def _parse_mode(
    source: str, mode: str, arg: Optional[str], seed: int
) -> Optional[FaultPolicy]:
    try:
        if mode == "crash":
            return FaultPolicy(crash=True, seed=seed)
        if mode == "partition":
            return FaultPolicy(partition=True, seed=seed)
        if mode in ("ok", "heal"):
            return None
        if mode in ("error", "flaky"):
            rate = float(arg) if arg is not None else 1.0
            return FaultPolicy(error_rate=rate, seed=seed)
        if mode == "slow":
            latency_ms = float(arg) if arg is not None else 50.0
            return FaultPolicy(latency=latency_ms / 1000.0, seed=seed)
    except ValueError as exc:
        raise ChaosSpecError(
            f"bad chaos argument for {source}:{mode}: {exc}"
        ) from exc
    raise ChaosSpecError(
        f"unknown chaos mode {mode!r} for source {source!r} "
        "(expected crash, partition, ok, error:<rate>, slow:<ms>)"
    )


class ChaosSchedule:
    """An immutable, time-sorted sequence of chaos events."""

    __slots__ = ("events",)

    def __init__(self, events: Sequence[ChaosEvent]):
        self.events: Tuple[ChaosEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """The last event's time (0 for an empty schedule)."""
        return self.events[-1].at if self.events else 0.0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosSchedule":
        """Parse the CLI spec format (see the module docstring)."""
        events: List[ChaosEvent] = []
        for chunk in (c.strip() for c in spec.split(",")):
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 3:
                raise ChaosSpecError(
                    f"bad chaos event {chunk!r} (expected AT_MS:SOURCE:MODE)"
                )
            at_ms, source, mode = parts[0], parts[1], parts[2].lower()
            arg = parts[3] if len(parts) > 3 else None
            try:
                at = float(at_ms) / 1000.0
            except ValueError as exc:
                raise ChaosSpecError(
                    f"bad chaos time {at_ms!r} in {chunk!r}"
                ) from exc
            if at < 0:
                raise ChaosSpecError(f"negative chaos time in {chunk!r}")
            if not source:
                raise ChaosSpecError(f"empty source name in {chunk!r}")
            events.append(
                ChaosEvent(at, source, _parse_mode(source, mode, arg, seed), mode)
            )
        return cls(events)


class ChaosRunner:
    """Applies a schedule's due events to a per-source gateway.

    The driver calls :meth:`advance` with monotonically increasing times
    (the service loop's clock, a benchmark's virtual step counter — the
    runner does not care which). Each event fires exactly once; the
    bounded :attr:`applied` log records what fired when, for the bench's
    JSON and the tests' assertions.
    """

    def __init__(self, gateway: PerSourceGateway, schedule: ChaosSchedule):
        self.gateway = gateway
        self.schedule = schedule
        self.applied: List[Dict[str, object]] = []
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.schedule.events)

    def advance(self, now: float) -> int:
        """Fire every event with ``at <= now``; returns how many fired."""
        fired = 0
        events = self.schedule.events
        while self._next < len(events) and events[self._next].at <= now:
            event = events[self._next]
            self._next += 1
            if event.policy is None:
                self.gateway.heal(event.source)
            else:
                self.gateway.set_policy(event.source, event.policy)
            self.applied.append(
                {"at": event.at, "source": event.source, "mode": event.mode}
            )
            fired += 1
        return fired

    def finish(self) -> int:
        """Fire everything left (end-of-run cleanup in benches)."""
        return self.advance(float("inf"))
