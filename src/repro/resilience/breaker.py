"""Per-source circuit breakers: closed / open / half-open with EWMA health.

A :class:`CircuitBreaker` guards one source's read path. It watches the
stream of probe outcomes and keeps two exponentially weighted moving
averages — error rate and latency — plus a consecutive-failure count:

* **closed** — reads flow; the breaker only records outcomes. It *opens*
  when either ``consecutive_limit`` probes fail back to back or the EWMA
  error rate crosses ``error_threshold`` with at least ``min_samples``
  observations behind it (a single unlucky probe never trips a breaker).
* **open** — reads are refused instantly (:meth:`allow` returns False and
  counts a *short circuit*): a source known to be down must not consume
  per-batch timeout budget. After ``cooldown`` seconds the next
  :meth:`allow` transitions to half-open and admits one probe.
* **half-open** — a limited number of trial probes. ``half_open_probes``
  consecutive successes close the breaker (and reset the EWMA, so stale
  failure history cannot immediately re-trip it); any failure re-opens it
  and restarts the cooldown.

Time is always passed in by the caller (the scheduler uses its event
loop's clock, tests use a hand-cranked virtual clock), so every
transition in the suite and in the E22 chaos scenarios is deterministic.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


class BreakerState(enum.Enum):
    """The three states of the classic circuit-breaker state machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery thresholds of one breaker (shared by a fleet).

    ``error_threshold`` is on the EWMA error rate in [0, 1];
    ``ewma_alpha`` is the smoothing weight of the newest observation;
    ``cooldown`` is seconds from opening to the first half-open probe.
    """

    error_threshold: float = 0.5
    ewma_alpha: float = 0.4
    min_samples: int = 2
    consecutive_limit: int = 3
    cooldown: float = 0.25
    half_open_probes: int = 1

    def __post_init__(self):
        if not 0.0 < self.error_threshold <= 1.0:
            raise ValueError("error_threshold must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.consecutive_limit < 1:
            raise ValueError("consecutive_limit must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


#: Transition listener: ``(source, old_state, new_state, now)``.
TransitionListener = Callable[[str, BreakerState, BreakerState, float], None]


class CircuitBreaker:
    """One source's availability state machine (thread-safe).

    All clocking is explicit: :meth:`allow`, :meth:`record_success` and
    :meth:`record_failure` take *now* from the caller, so the machine is a
    pure function of its input stream — the property the deterministic
    chaos tests rely on.
    """

    __slots__ = ("name", "config", "state", "ewma_error", "ewma_latency",
                 "samples", "consecutive_failures", "opened_at",
                 "half_open_successes", "successes", "failures",
                 "short_circuits", "opens", "closes", "half_opens",
                 "last_transition_at", "_on_transition", "_lock")

    def __init__(
        self,
        name: str,
        config: Optional[BreakerConfig] = None,
        on_transition: Optional[TransitionListener] = None,
    ):
        self.name = name
        self.config = config if config is not None else BreakerConfig()
        self.state = BreakerState.CLOSED
        self.ewma_error = 0.0
        self.ewma_latency: Optional[float] = None
        self.samples = 0
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.half_open_successes = 0
        self.successes = 0
        self.failures = 0
        self.short_circuits = 0
        self.opens = 0
        self.closes = 0
        self.half_opens = 0
        self.last_transition_at: Optional[float] = None
        self._on_transition = on_transition
        self._lock = threading.Lock()

    # -- the gate ----------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a probe go out right now? (Advances open → half-open.)"""
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return True
            if self.state is BreakerState.OPEN:
                if (
                    self.opened_at is not None
                    and now - self.opened_at >= self.config.cooldown
                ):
                    self._transition(BreakerState.HALF_OPEN, now)
                    return True
                self.short_circuits += 1
                return False
            return True  # HALF_OPEN: trial probes flow

    # -- outcome stream ----------------------------------------------------------

    def record_success(self, latency: float, now: float) -> None:
        with self._lock:
            self.successes += 1
            self.samples += 1
            self.consecutive_failures = 0
            self._observe(0.0, latency)
            if self.state is BreakerState.HALF_OPEN:
                self.half_open_successes += 1
                if self.half_open_successes >= self.config.half_open_probes:
                    # Recovered: forget the failure history that tripped us,
                    # or the first post-recovery blip would re-open instantly.
                    self.ewma_error = 0.0
                    self._transition(BreakerState.CLOSED, now)

    def record_failure(self, latency: float, now: float) -> None:
        with self._lock:
            self.failures += 1
            self.samples += 1
            self.consecutive_failures += 1
            self._observe(1.0, latency)
            if self.state is BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN, now)
            elif self.state is BreakerState.CLOSED and self._should_open():
                self._transition(BreakerState.OPEN, now)

    def _should_open(self) -> bool:
        config = self.config
        if self.consecutive_failures >= config.consecutive_limit:
            return True
        return (
            self.samples >= config.min_samples
            and self.ewma_error >= config.error_threshold
        )

    def _observe(self, error: float, latency: float) -> None:
        alpha = self.config.ewma_alpha
        self.ewma_error = alpha * error + (1 - alpha) * self.ewma_error
        if self.ewma_latency is None:
            self.ewma_latency = latency
        else:
            self.ewma_latency = alpha * latency + (1 - alpha) * self.ewma_latency

    # -- transitions -------------------------------------------------------------

    def _transition(self, new: BreakerState, now: float) -> None:
        old, self.state = self.state, new
        self.last_transition_at = now
        if new is BreakerState.OPEN:
            self.opens += 1
            self.opened_at = now
        elif new is BreakerState.HALF_OPEN:
            self.half_opens += 1
            self.half_open_successes = 0
        else:
            self.closes += 1
            self.opened_at = None
        if self._on_transition is not None:
            self._on_transition(self.name, old, new, now)

    # -- observability -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """This breaker's health as plain data (``stats()["resilience"]``)."""
        with self._lock:
            return {
                "state": self.state.value,
                "ewma_error": self.ewma_error,
                "ewma_latency": self.ewma_latency,
                "samples": self.samples,
                "consecutive_failures": self.consecutive_failures,
                "successes": self.successes,
                "failures": self.failures,
                "short_circuits": self.short_circuits,
                "opens": self.opens,
                "half_opens": self.half_opens,
                "closes": self.closes,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, {self.state.value}, "
            f"ewma_error={self.ewma_error:.3f}, samples={self.samples})"
        )
