"""The per-batch availability pass: breakers, timeouts, hedged probes.

Before a batch computes, the :class:`ResilienceManager` resolves which of
the snapshot's sources are *actually reachable right now*:

1. every source whose breaker is open is excluded instantly (a short
   circuit — no read, no timeout budget spent);
2. the remaining sources are probed **concurrently** through the
   gateway's per-source seam, each under its own ``source_timeout``;
3. a probe that is slow past ``hedge_delay`` (or that failed with hedge
   budget left) launches a staggered duplicate — a *hedged retry*; the
   first success wins and the stragglers are cancelled;
4. outcomes feed the breakers: failures open them, cooldowns half-open
   them, trial successes close them.

The result is a :class:`ProbeReport`: the excluded source names (to be
demoted by :mod:`repro.resilience.degrade`) plus counters. The manager
never raises — total source loss is still a report, and the scheduler
answers from whatever remains.

Everything is clocked off the running event loop and the gateway's seeded
RNGs, so the E22 chaos scenarios replay bit-for-bit.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)

#: Bound on remembered breaker transitions (the stats()/bench surface).
MAX_TRANSITIONS = 256


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs of the per-source availability layer.

    ``source_timeout`` caps each probe (and all its hedges together);
    ``hedge_delay`` is how long a probe may dawdle before a duplicate is
    launched (0 disables hedging); ``max_hedges`` bounds duplicates per
    probe. The breaker fields mirror :class:`BreakerConfig`.
    """

    source_timeout: float = 0.05
    hedge_delay: float = 0.0
    max_hedges: int = 1
    error_threshold: float = 0.5
    ewma_alpha: float = 0.4
    min_samples: int = 2
    consecutive_limit: int = 3
    cooldown: float = 0.25
    half_open_probes: int = 1

    def __post_init__(self):
        if self.source_timeout <= 0:
            raise ValueError("source_timeout must be > 0")
        if self.hedge_delay < 0:
            raise ValueError("hedge_delay must be >= 0")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be >= 0")

    def breaker_config(self) -> BreakerConfig:
        return BreakerConfig(
            error_threshold=self.error_threshold,
            ewma_alpha=self.ewma_alpha,
            min_samples=self.min_samples,
            consecutive_limit=self.consecutive_limit,
            cooldown=self.cooldown,
            half_open_probes=self.half_open_probes,
        )


@dataclass
class ProbeReport:
    """What one availability pass found out."""

    excluded: Tuple[str, ...] = ()
    probed: int = 0
    short_circuited: int = 0
    failures: int = 0
    timeouts: int = 0
    hedges: int = 0
    hedge_wins: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.excluded)


class ResilienceManager:
    """Per-source breakers plus the concurrent probe/hedge machinery.

    *metrics* is duck-typed (anything with ``counter(name).inc()`` and
    ``histogram(name).observe()`` — the service passes its
    :class:`~repro.service.metrics.MetricsRegistry`); ``None`` records
    nothing. Breaker state transitions land in ``metrics`` counters
    (``breaker_opened`` / ``breaker_half_opened`` / ``breaker_closed``)
    and in a bounded :attr:`transitions` log.
    """

    def __init__(self, config: Optional[ResilienceConfig] = None, metrics=None):
        self.config = config if config is not None else ResilienceConfig()
        self.metrics = metrics
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.transitions: List[Dict[str, object]] = []

    # -- breakers ----------------------------------------------------------------

    def breaker_for(self, name: str) -> CircuitBreaker:
        breaker = self.breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                name,
                self.config.breaker_config(),
                on_transition=self._record_transition,
            )
            self.breakers[name] = breaker
        return breaker

    def _record_transition(self, name, old, new, now) -> None:
        self.transitions.append(
            {"source": name, "from": old.value, "to": new.value, "at": now}
        )
        del self.transitions[:-MAX_TRANSITIONS]
        if self.metrics is not None:
            self.metrics.counter(f"breaker_{self._verb(new)}").inc()

    @staticmethod
    def _verb(state: BreakerState) -> str:
        return {
            BreakerState.OPEN: "opened",
            BreakerState.HALF_OPEN: "half_opened",
            BreakerState.CLOSED: "closed",
        }[state]

    # -- the availability pass ---------------------------------------------------

    async def resolve(self, snapshot, gateway) -> ProbeReport:
        """Probe every source of *snapshot* through *gateway*; never raises."""
        loop = asyncio.get_running_loop()
        report = ProbeReport()
        excluded: List[str] = []
        probes: List[Tuple[str, "asyncio.Task"]] = []
        for source in snapshot.collection:
            name = source.name
            breaker = self.breaker_for(name)
            if not breaker.allow(loop.time()):
                excluded.append(name)
                report.short_circuited += 1
                self._count("breaker_short_circuits")
                continue
            probes.append(
                (name, loop.create_task(self._probe(gateway, snapshot, name, report)))
            )
        for name, task in probes:
            report.probed += 1
            ok = await task
            if not ok:
                excluded.append(name)
        report.excluded = tuple(sorted(excluded))
        if report.excluded:
            self._count("sources_excluded", len(report.excluded))
        return report

    async def _probe(self, gateway, snapshot, name: str, report: ProbeReport) -> bool:
        """One source's probe, hedged and clocked; outcome fed to its breaker."""
        loop = asyncio.get_running_loop()
        breaker = self.breaker_for(name)
        config = self.config
        start = loop.time()
        deadline = start + config.source_timeout
        tasks = [loop.create_task(gateway.probe(snapshot, name))]
        hedging = config.hedge_delay > 0 and config.max_hedges > 0
        try:
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    report.timeouts += 1
                    self._count("source_probe_timeouts")
                    self._failure(breaker, start, loop)
                    return False
                can_hedge = hedging and len(tasks) <= config.max_hedges
                wait_for = min(remaining, config.hedge_delay) if can_hedge else remaining
                done, _pending = await asyncio.wait(
                    tasks, timeout=wait_for,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                winners = [t for t in done if t.exception() is None]
                if winners:
                    if tasks.index(winners[0]) > 0:
                        report.hedge_wins += 1
                        self._count("source_hedge_wins")
                    latency = loop.time() - start
                    breaker.record_success(latency, loop.time())
                    self._observe("probe_latency", latency)
                    return True
                all_failed = len(done) == len(tasks)
                if all_failed and not can_hedge:
                    report.failures += 1
                    self._count("source_probe_failures")
                    self._failure(breaker, start, loop)
                    return False
                if can_hedge:
                    # Slow (nothing finished inside hedge_delay) or every
                    # launched attempt failed: stagger out a duplicate.
                    tasks.append(loop.create_task(gateway.probe(snapshot, name)))
                    report.hedges += 1
                    self._count("source_hedges")
        finally:
            for task in tasks:
                task.cancel()
            # Reap cancellations/failures so no "exception never retrieved"
            # warnings leak from abandoned hedges.
            await asyncio.gather(*tasks, return_exceptions=True)

    def _failure(self, breaker: CircuitBreaker, start: float, loop) -> None:
        breaker.record_failure(loop.time() - start, loop.time())

    # -- observability -----------------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(delta)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def states(self) -> Dict[str, str]:
        """Source → breaker state (tests and quick health checks)."""
        return {name: b.state.value for name, b in sorted(self.breakers.items())}

    def stats(self) -> Dict[str, object]:
        """The ``stats()["resilience"]`` payload: per-source health."""
        return {
            "sources": {
                name: breaker.snapshot()
                for name, breaker in sorted(self.breakers.items())
            },
            "transitions": list(self.transitions),
            "config": {
                "source_timeout": self.config.source_timeout,
                "hedge_delay": self.config.hedge_delay,
                "error_threshold": self.config.error_threshold,
                "cooldown": self.config.cooldown,
            },
        }

