"""Semantic graceful degradation: demote lost sources, grade the answers.

The paper's annotations are *guarantees*: source ``S_i = ⟨φ, v, c, s⟩``
promises at least a ``c``-fraction of its intended content is present and
at least an ``s``-fraction of its extension is correct. A source that is
crashed, partitioned, or flapping at query time is a source whose
guarantee cannot be *confirmed* — the mediator still holds the cached
extension, but the annotation backing it has evaporated.

The principled response (following the completeness-weakening line of
"Complete Approximations of Incomplete Queries" and the query-driven
completeness-management thesis) is not to error out but to **demote** the
annotation and answer from what the remaining annotations still entail:

* :func:`demote` replaces a lost source's bounds with ``c = 0, s = 0``.
  The extension stays in the fact space (its facts remain *candidates*),
  but it constrains nothing: ``poss(S')`` ⊇ ``poss(S)``, every possible
  world of the full collection is still possible, and new ones appear.
* Because ``poss`` only grows, anything certain under the demoted
  collection is still certain under the full one — degraded answers are
  **sound**. The converse fails, and that is the degradation: an answer
  certain only because of the lost source's completeness bound drops to
  *possible*; a fact whose confidence 1 hinged on the lost source's
  soundness bound loses that status.
* :func:`grade_answers` makes the loss explicit: it splits the full
  collection's certain answers into those that survive demotion
  (guarantee ``"certain"``) and those that degrade (``"possible"``).

These are pure functions of collections — the property suite checks the
service's dynamically degraded answers against a *statically* weakened
registry built from the same demotion, so the runtime path can never
drift from the declarative semantics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

from repro.sources.collection import SourceCollection

#: Guarantee levels a degraded response can attach to an answer.
GUARANTEE_CERTAIN = "certain"
GUARANTEE_POSSIBLE = "possible"


def demote(
    collection: SourceCollection, excluded: Iterable[str]
) -> SourceCollection:
    """The collection with every *excluded* source's annotation demoted.

    Demoted descriptors keep their extension (the facts stay candidates in
    the global fact space) but promise nothing: completeness and soundness
    bounds both drop to 0. Unknown names are ignored — an excluded source
    that was deregistered mid-flight simply no longer needs demoting.
    """
    excluded = frozenset(excluded)
    if not excluded:
        return collection
    return SourceCollection(
        source.with_bounds(0, 0) if source.name in excluded else source
        for source in collection
    )


def grade_answers(
    full_answers: FrozenSet,
    degraded_answers: FrozenSet,
) -> Dict[object, str]:
    """Per-answer guarantee levels after a demotion.

    *degraded_answers* (certain under the demoted collection) keep
    ``"certain"`` — they are entailed by the sources still standing.
    Answers in *full_answers* only (certain under the full annotation set,
    lost under demotion) downgrade to ``"possible"``: they depended on a
    guarantee the mediator could not confirm at read time.
    """
    grades: Dict[object, str] = {
        answer: GUARANTEE_CERTAIN for answer in degraded_answers
    }
    for answer in full_answers:
        grades.setdefault(answer, GUARANTEE_POSSIBLE)
    return grades


def downgraded(
    full_answers: FrozenSet,
    degraded_answers: FrozenSet,
) -> Tuple:
    """The answers a demotion cost: certain before, merely possible after."""
    from repro.shard.merge import canonical_order

    return canonical_order(frozenset(full_answers) - frozenset(degraded_answers))
