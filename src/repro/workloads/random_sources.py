"""Random identity-view source collections (the §5.1 / Corollary 3.4 shape).

Two generators:

* :func:`random_identity_collection` — arbitrary random extensions and
  bounds; may be consistent or not (exercise the consistency checker).
* :func:`consistent_identity_collection` — starts from a hidden ground-truth
  set and perturbs per-source copies, declaring the *measured* quality, so
  the ground truth is a possible world and the collection is consistent by
  construction. Returns the ground truth for evaluation (E7/E8 style).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import identity_view
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.workloads.perturb import perturb_extension, slack_bound

DEFAULT_RELATION = "R"


def universe(size: int, prefix: str = "e") -> List[str]:
    """A universe of *size* distinguishable constants."""
    return [f"{prefix}{i}" for i in range(size)]


def random_identity_collection(
    n_sources: int,
    universe_size: int,
    extension_size: Tuple[int, int] = (2, 6),
    completeness_range: Tuple[float, float] = (0.2, 0.8),
    soundness_range: Tuple[float, float] = (0.2, 0.8),
    rng: Optional[random.Random] = None,
    relation: str = DEFAULT_RELATION,
) -> SourceCollection:
    """A random identity-view collection over a shared universe."""
    rng = rng if rng is not None else random.Random()
    pool = universe(universe_size)
    sources = []
    for i in range(1, n_sources + 1):
        low, high = extension_size
        size = rng.randint(low, min(high, universe_size))
        elements = rng.sample(pool, size)
        view = identity_view(f"V{i}", relation, 1)
        extension = [Atom(f"V{i}", (e,)) for e in elements]
        c = Fraction(str(round(rng.uniform(*completeness_range), 3)))
        s = Fraction(str(round(rng.uniform(*soundness_range), 3)))
        sources.append(SourceDescriptor(view, extension, c, s, name=f"S{i}"))
    return SourceCollection(sources)


def consistent_identity_collection(
    n_sources: int,
    universe_size: int,
    truth_size: int,
    drop_rate: float = 0.2,
    corrupt_rate: float = 0.1,
    slack: float = 0.0,
    rng: Optional[random.Random] = None,
    relation: str = DEFAULT_RELATION,
) -> Tuple[SourceCollection, GlobalDatabase, List[str]]:
    """A consistent collection of noisy copies of a hidden ground truth.

    Each source holds a perturbed copy of the true set and declares its
    measured quality (optionally under-promised by *slack*). Returns
    ``(collection, ground_truth, domain)``.
    """
    rng = rng if rng is not None else random.Random()
    pool = universe(universe_size)
    truth_elements = rng.sample(pool, min(truth_size, universe_size))
    ground_truth = GlobalDatabase(Atom(relation, (e,)) for e in truth_elements)
    sources = []
    for i in range(1, n_sources + 1):
        view = identity_view(f"V{i}", relation, 1)
        intended = {Atom(f"V{i}", f.args) for f in ground_truth}
        result = perturb_extension(
            intended, drop_rate, corrupt_rate, pool, rng
        )
        sources.append(
            SourceDescriptor(
                view,
                result.extension,
                slack_bound(result.completeness, slack),
                slack_bound(result.soundness, slack),
                name=f"S{i}",
            )
        )
    return SourceCollection(sources), ground_truth, pool
