"""Web caches / mirror sites workload (the paper's closing remark, §6).

"All the results [in the identity-view special case] can be expressed in
terms of sets ... multiple caches of a set of objects (e.g. Web pages),
multiple mirror-sites of a given site."

We model an origin site as a set of live object identifiers and each cache
or mirror as a stale, partial copy: objects may be *missing* (never fetched
or evicted → incompleteness) or *stale* (still present although deleted at
the origin → unsoundness). Every cache is an identity view over the global
relation ``Live(object)``, so the full §5.1 machinery applies: consistency,
exact confidence per object, certain/possible live sets.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import identity_view
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.sources.measures import (
    completeness_of_extension,
    soundness_of_extension,
)
from repro.workloads.perturb import slack_bound

RELATION = "Live"


class CacheFleet:
    """An origin object set plus a fleet of stale partial caches."""

    __slots__ = ("origin", "collection", "objects", "domain")

    def __init__(
        self,
        origin: GlobalDatabase,
        collection: SourceCollection,
        objects: Sequence[str],
        domain: Sequence[str],
    ):
        self.origin = origin
        self.collection = collection
        self.objects = tuple(objects)
        self.domain = tuple(domain)

    def live_objects(self) -> frozenset:
        """Object ids live at the origin (the ground truth)."""
        return frozenset(f.args[0].value for f in self.origin)


def generate(
    n_objects: int = 30,
    n_retired: int = 10,
    n_caches: int = 4,
    miss_rate: float = 0.2,
    stale_rate: float = 0.15,
    slack: float = 0.0,
    rng: Optional[random.Random] = None,
) -> CacheFleet:
    """Generate a cache fleet.

    The universe holds ``n_objects`` live and ``n_retired`` deleted objects.
    Each cache contains a live object with probability ``1 − miss_rate`` and
    a retired object with probability ``stale_rate``. Declared bounds are
    the measured quality of each cache against the origin (optionally
    under-promised by *slack*), so the origin is a possible world and the
    fleet is consistent by construction.
    """
    rng = rng if rng is not None else random.Random()
    live = [f"obj{i}" for i in range(n_objects)]
    retired = [f"old{i}" for i in range(n_retired)]
    domain = live + retired
    origin = GlobalDatabase(Atom(RELATION, (o,)) for o in live)
    intended = frozenset(origin.facts())

    sources: List[SourceDescriptor] = []
    for i in range(1, n_caches + 1):
        view = identity_view(f"Cache{i}", RELATION, 1)
        held: List[Atom] = []
        for o in live:
            if rng.random() >= miss_rate:
                held.append(Atom(f"Cache{i}", (o,)))
        for o in retired:
            if rng.random() < stale_rate:
                held.append(Atom(f"Cache{i}", (o,)))
        extension = frozenset(held)
        as_global = frozenset(Atom(RELATION, f.args) for f in extension)
        measured_c = completeness_of_extension(as_global, intended)
        measured_s = soundness_of_extension(as_global, intended)
        sources.append(
            SourceDescriptor(
                view,
                extension,
                slack_bound(measured_c, slack),
                slack_bound(measured_s, slack),
                name=f"Cache{i}",
            )
        )
    return CacheFleet(
        origin=origin,
        collection=SourceCollection(sources),
        objects=live,
        domain=domain,
    )


def ranking_quality(
    ranked_objects: Sequence[str], live: frozenset, k: int
) -> Fraction:
    """Precision@k of a confidence ranking against the true live set."""
    if k <= 0:
        return Fraction(1)
    top = list(ranked_objects)[:k]
    if not top:
        return Fraction(0)
    hits = sum(1 for o in top if o in live)
    return Fraction(hits, len(top))
