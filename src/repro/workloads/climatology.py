"""GHCN-style climatology workload (the paper's motivating example, §1.1).

A synthetic stand-in for the Global Historical Climatology Network: the
paper only uses GHCN to *motivate* the model (per-country/per-period sources
over a global ``Temperature``/``Station`` schema with declared quality
estimates), so a generator with a known ground truth — which real GHCN data
cannot offer — is the right substrate for verifying the semantics.

Schema:

* ``Station(id, country)`` — station directory (single source S0);
* ``Temperature(station, year, month, value)`` — mean monthly temperatures.

Sources mirror the paper's:

* ``S0`` — the station directory, near-exact;
* one source per country, covering that country's stations after a cutoff
  year (``V(s,y,m,v) ← Temperature(s,y,m,v), Station(s,c), After(y,y0)``);
* optionally a single-station source (the paper's S3).

Each source's extension is a perturbed copy of its intended content; its
declared bounds are the measured values, so the ground truth is a possible
world. The completeness of temperature sources is also derivable a priori
from the functional dependency ``station, year, month → value`` (stations ×
years × months), as §2.2 describes — exposed via ``fd_intended_size``.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.builtins import default_registry
from repro.queries.parser import parse_rule
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.workloads.perturb import perturb_extension, slack_bound


class ClimatologyWorkload:
    """A generated climatology scenario with ground truth and sources."""

    __slots__ = (
        "ground_truth",
        "collection",
        "countries",
        "stations",
        "years",
        "months",
        "value_domain",
    )

    def __init__(
        self,
        ground_truth: GlobalDatabase,
        collection: SourceCollection,
        countries: Sequence[str],
        stations: Dict[str, List[int]],
        years: Sequence[int],
        months: Sequence[int],
        value_domain: Sequence[int],
    ):
        self.ground_truth = ground_truth
        self.collection = collection
        self.countries = tuple(countries)
        self.stations = stations
        self.years = tuple(years)
        self.months = tuple(months)
        self.value_domain = tuple(value_domain)

    def fd_intended_size(self, country: str, cutoff_year: int) -> int:
        """|φ(D)| from the FD argument: stations × qualifying years × months."""
        qualifying_years = sum(1 for y in self.years if y > cutoff_year)
        return len(self.stations[country]) * qualifying_years * len(self.months)

    def station_count(self) -> int:
        return sum(len(ids) for ids in self.stations.values())


def _seasonal_value(station: int, year: int, month: int, rng: random.Random) -> int:
    """A plausible integer mean temperature (°C ×1) with seasonal shape."""
    seasonal = [-8, -6, -1, 6, 12, 17, 20, 19, 14, 8, 2, -5][month - 1]
    return seasonal + (station % 7) - 3 + rng.randint(-2, 2)


def generate(
    n_countries: int = 2,
    stations_per_country: int = 2,
    years: Sequence[int] = (1990, 1991),
    months: Sequence[int] = (1, 7),
    cutoff_years: Optional[Dict[str, int]] = None,
    drop_rate: float = 0.15,
    corrupt_rate: float = 0.08,
    slack: float = 0.0,
    include_single_station_source: bool = True,
    rng: Optional[random.Random] = None,
) -> ClimatologyWorkload:
    """Generate a climatology workload.

    *cutoff_years* maps a country to the first year NOT excluded (the
    paper's "since 1900"/"since 1800"); defaults to covering all years.
    """
    rng = rng if rng is not None else random.Random()
    registry = default_registry()
    countries = [f"C{i}" for i in range(1, n_countries + 1)]
    stations: Dict[str, List[int]] = {}
    station_facts: List[Atom] = []
    next_id = 100
    for country in countries:
        ids = []
        for _ in range(stations_per_country):
            ids.append(next_id)
            station_facts.append(Atom("Station", (next_id, country)))
            next_id += 1
        stations[country] = ids

    temperature_facts: List[Atom] = []
    value_domain_set = set()
    for country in countries:
        for station in stations[country]:
            for year in years:
                for month in months:
                    value = _seasonal_value(station, year, month, rng)
                    value_domain_set.add(value)
                    temperature_facts.append(
                        Atom("Temperature", (station, year, month, value))
                    )
    ground_truth = GlobalDatabase(station_facts + temperature_facts)
    value_domain = sorted(value_domain_set)

    cutoff_years = cutoff_years or {}
    sources: List[SourceDescriptor] = []

    # S0: the station directory — exact by default (single authority).
    view0 = parse_rule("V0(s, c) <- Station(s, c)", registry)
    intended0 = view0.apply(ground_truth)
    sources.append(
        SourceDescriptor(view0, intended0, Fraction(1), Fraction(1), name="S0")
    )

    # One temperature source per country, with an After(year, cutoff) filter.
    for i, country in enumerate(countries, start=1):
        cutoff = cutoff_years.get(country, min(years) - 1)
        view = parse_rule(
            f'V{i}(s, y, m, v) <- Temperature(s, y, m, v), '
            f'Station(s, "{country}"), After(y, {cutoff})',
            registry,
        )
        intended = view.apply(ground_truth)
        perturbed = perturb_extension(
            intended,
            drop_rate,
            corrupt_rate,
            value_domain,  # corruption flips measurement values
            rng,
        )
        sources.append(
            SourceDescriptor(
                view,
                perturbed.extension,
                slack_bound(perturbed.completeness, slack),
                slack_bound(perturbed.soundness, slack),
                name=f"S{i}",
            )
        )

    if include_single_station_source and countries:
        station = stations[countries[0]][0]
        index = len(countries) + 1
        view = parse_rule(
            f"V{index}(y, m, v) <- Temperature({station}, y, m, v)", registry
        )
        intended = view.apply(ground_truth)
        perturbed = perturb_extension(
            intended, drop_rate, corrupt_rate, value_domain, rng
        )
        sources.append(
            SourceDescriptor(
                view,
                perturbed.extension,
                slack_bound(perturbed.completeness, slack),
                slack_bound(perturbed.soundness, slack),
                name=f"S{index}",
            )
        )

    return ClimatologyWorkload(
        ground_truth=ground_truth,
        collection=SourceCollection(sources),
        countries=countries,
        stations=stations,
        years=years,
        months=months,
        value_domain=value_domain,
    )
