"""Synthetic workload generators: climatology, caches, random collections."""

from repro.workloads import accounting, caches, climatology
from repro.workloads.perturb import (
    PerturbationResult,
    corrupt_fact,
    perturb_extension,
    slack_bound,
)
from repro.workloads.random_sources import (
    consistent_identity_collection,
    random_identity_collection,
    universe,
)

__all__ = [
    "perturb_extension",
    "corrupt_fact",
    "slack_bound",
    "PerturbationResult",
    "random_identity_collection",
    "consistent_identity_collection",
    "universe",
    "climatology",
    "caches",
    "accounting",
]
