"""Accounting-audit workload (the §2.2 Kaplan & Krishnan reference).

The paper motivates soundness/completeness estimation with accounting
information systems: analysts audit record samples at a target confidence
level to certify that data is free of specific error types. This workload
makes that pipeline executable end to end:

1. a ground-truth ledger ``Entry(txn_id, account, amount)`` is generated;
2. each reporting system holds a perturbed copy (lost entries, mis-keyed
   amounts);
3. an auditor draws the sample size prescribed by
   :func:`repro.sources.quality.required_sample_size`, checks each sampled
   record against supporting documents (the ground truth, in the
   simulation), and declares a Clopper–Pearson lower soundness bound plus
   an FD-derived completeness bound (txn_id → account, amount with the
   transaction universe known);
4. the declared descriptor is *statistically* honest: the ground truth is a
   possible world whenever the realized bounds hold, which the chosen
   confidence level guarantees with the corresponding probability — the E13
   bench measures exactly that coverage.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import identity_view
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.sources.quality import (
    clopper_pearson_lower,
    required_sample_size,
)

RELATION = "Entry"


class AuditedSystem:
    """One reporting system plus the auditor's findings about it."""

    __slots__ = (
        "descriptor",
        "sample_size",
        "sample_correct",
        "true_soundness",
        "true_completeness",
    )

    def __init__(
        self,
        descriptor: SourceDescriptor,
        sample_size: int,
        sample_correct: int,
        true_soundness: Fraction,
        true_completeness: Fraction,
    ):
        self.descriptor = descriptor
        self.sample_size = sample_size
        self.sample_correct = sample_correct
        self.true_soundness = true_soundness
        self.true_completeness = true_completeness

    def declared_holds(self) -> bool:
        """Did the audit's declared bounds come out below the true quality?"""
        return (
            self.descriptor.soundness_bound <= self.true_soundness
            and self.descriptor.completeness_bound <= self.true_completeness
        )


class AccountingWorkload:
    """Ground-truth ledger, audited reporting systems, and their collection."""

    __slots__ = ("ledger", "systems", "n_transactions")

    def __init__(
        self,
        ledger: GlobalDatabase,
        systems: List[AuditedSystem],
        n_transactions: int,
    ):
        self.ledger = ledger
        self.systems = systems
        self.n_transactions = n_transactions

    @property
    def collection(self) -> SourceCollection:
        return SourceCollection([s.descriptor for s in self.systems])


def _ledger(n_transactions: int, rng: random.Random) -> GlobalDatabase:
    accounts = ["cash", "sales", "payroll", "inventory", "tax"]
    facts = [
        Atom(RELATION, (txn, rng.choice(accounts), rng.randint(10, 9999)))
        for txn in range(1, n_transactions + 1)
    ]
    return GlobalDatabase(facts)


def generate(
    n_systems: int = 2,
    n_transactions: int = 200,
    loss_rate: float = 0.1,
    error_rate: float = 0.05,
    confidence: float = 0.95,
    margin: float = 0.05,
    rng: Optional[random.Random] = None,
) -> AccountingWorkload:
    """Generate a ledger, noisy reporting systems, and audited descriptors."""
    rng = rng if rng is not None else random.Random()
    ledger = _ledger(n_transactions, rng)
    true_facts = frozenset(ledger.facts())
    systems: List[AuditedSystem] = []
    for i in range(1, n_systems + 1):
        local = f"Sys{i}"
        held: List[Atom] = []
        for entry in sorted(true_facts):
            if rng.random() < loss_rate:
                continue  # entry never posted
            if rng.random() < error_rate:
                # mis-keyed amount
                txn, account, amount = (a.value for a in entry.args)
                held.append(Atom(local, (txn, account, amount + rng.randint(1, 500))))
            else:
                held.append(Atom(local, entry.args))
        extension = frozenset(held)

        as_global = frozenset(Atom(RELATION, f.args) for f in extension)
        correct_set = as_global & true_facts
        true_soundness = (
            Fraction(len(correct_set), len(extension)) if extension else Fraction(1)
        )
        true_completeness = Fraction(len(correct_set), len(true_facts))

        # The audit: sample per the prescribed size, declare the CP bound.
        sample_size = min(
            required_sample_size(confidence, margin), len(extension)
        )
        sample = rng.sample(sorted(extension), sample_size) if sample_size else []
        correct = sum(
            1 for f in sample if Atom(RELATION, f.args) in true_facts
        )
        declared_soundness = (
            clopper_pearson_lower(correct, sample_size, confidence)
            if sample_size
            else 1.0
        )
        # FD argument: txn -> account, amount with n_transactions known.
        declared_completeness = Fraction(
            round(declared_soundness * len(extension)), n_transactions
        )
        declared_completeness = max(
            Fraction(0), min(Fraction(1), declared_completeness)
        )

        descriptor = SourceDescriptor(
            identity_view(local, RELATION, 3),
            extension,
            declared_completeness,
            declared_soundness,
            name=local,
        )
        systems.append(
            AuditedSystem(
                descriptor,
                sample_size,
                correct,
                true_soundness,
                true_completeness,
            )
        )
    return AccountingWorkload(ledger, systems, n_transactions)
