"""Perturbation model: manufacture partially sound/complete extensions.

Given a source's *intended* content (the view applied to a ground-truth
world), produce its *actual* extension by

* **dropping** each intended fact with probability ``drop_rate``
  (reducing completeness), and
* **corrupting** each surviving fact with probability ``corrupt_rate`` —
  replacing one argument with a random domain value so the fact is (almost
  surely) wrong (reducing soundness).

The true measures of the perturbed extension are computed against the
intended content, so declared bounds can be set to the measured values —
which guarantees the ground truth itself is a possible world, i.e. the
generated collection is consistent by construction.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.model.terms import Constant, as_term
from repro.sources.measures import (
    completeness_of_extension,
    soundness_of_extension,
)


class PerturbationResult:
    """A perturbed extension with its exact measured quality."""

    __slots__ = ("extension", "completeness", "soundness", "dropped", "corrupted")

    def __init__(
        self,
        extension: FrozenSet[Atom],
        completeness: Fraction,
        soundness: Fraction,
        dropped: int,
        corrupted: int,
    ):
        self.extension = extension
        self.completeness = completeness
        self.soundness = soundness
        self.dropped = dropped
        self.corrupted = corrupted

    def __repr__(self) -> str:
        return (
            f"PerturbationResult(|v|={len(self.extension)}, "
            f"c={self.completeness}, s={self.soundness}, "
            f"dropped={self.dropped}, corrupted={self.corrupted})"
        )


def corrupt_fact(
    fact: Atom, domain_values: Sequence, rng: random.Random
) -> Atom:
    """Replace one random argument with a random domain value."""
    if fact.arity == 0:
        return fact
    position = rng.randrange(fact.arity)
    args = list(fact.args)
    args[position] = as_term(rng.choice(list(domain_values)))
    return Atom(fact.relation, args)


def perturb_extension(
    intended: Iterable[Atom],
    drop_rate: float,
    corrupt_rate: float,
    domain_values: Sequence,
    rng: Optional[random.Random] = None,
) -> PerturbationResult:
    """Drop and corrupt intended facts; measure the damage exactly."""
    if not 0 <= drop_rate <= 1 or not 0 <= corrupt_rate <= 1:
        raise SourceError("rates must lie in [0, 1]")
    rng = rng if rng is not None else random.Random()
    intended_set = frozenset(intended)
    kept: List[Atom] = []
    dropped = 0
    corrupted = 0
    for fact in sorted(intended_set):
        if rng.random() < drop_rate:
            dropped += 1
            continue
        if rng.random() < corrupt_rate:
            mutated = corrupt_fact(fact, domain_values, rng)
            corrupted += 1
            kept.append(mutated)
        else:
            kept.append(fact)
    extension = frozenset(kept)
    return PerturbationResult(
        extension=extension,
        completeness=completeness_of_extension(extension, intended_set),
        soundness=soundness_of_extension(extension, intended_set),
        dropped=dropped,
        corrupted=corrupted,
    )


def slack_bound(measured: Fraction, slack: float = 0.0) -> Fraction:
    """A declared lower bound at or below the measured value.

    ``slack = 0`` declares exactly the measured quality; positive slack
    under-promises (``measured · (1 − slack)``), modelling conservative
    providers. Under-promising can only enlarge poss(S), so consistency is
    preserved.
    """
    if not 0 <= slack <= 1:
        raise SourceError(f"slack must lie in [0, 1]: {slack}")
    bound = measured * (Fraction(1) - Fraction(str(slack)))
    return max(Fraction(0), min(Fraction(1), bound))
