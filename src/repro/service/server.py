""":class:`MediatorService`: the long-running mediator, assembled.

Where :class:`~repro.integration.mediator.Mediator` is a one-shot facade —
build it, ask it, drop it — the service is the deployment shape the paper's
§1.1 motivates: sources register, update, and fail *while queries are in
flight*. It owns:

* a :class:`~repro.service.registry.SourceRegistry` (versioned, COW
  snapshots; mutations incrementally invalidate the engine memo),
* a :class:`~repro.service.scheduler.RequestScheduler` (bounded admission,
  deadlines, micro-batching, retry/backoff),
* a :class:`~repro.service.faults.SourceGateway` (optionally a
  :class:`FaultInjector`) as the source-read seam,
* a :class:`~repro.service.metrics.MetricsRegistry` and
  :class:`~repro.service.tracing.Tracer`, merged into one :meth:`stats`
  snapshot (the scrape surface of ``python -m repro serve``).

Use it as an async context manager::

    async with MediatorService(collection, domain) as service:
        response = await service.confidence([fact("R", "a")], timeout=0.5)
        assert response.ok

Mutations are thread-safe and may be called from outside the loop; queries
run on the loop the service was started on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cache import cache_registry
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.confidence.engine.memo import LRUMemo, shared_memo
from repro.service.faults import (
    FaultInjector,
    FaultPolicy,
    PerSourceGateway,
    SourceGateway,
)
from repro.service.metrics import MetricsRegistry
from repro.service.registry import (
    RegistryDiff,
    SourceRegistry,
    invalidation_tags,
)
from repro.service.requests import ServiceResponse
from repro.service.scheduler import RequestScheduler, SchedulerConfig
from repro.service.tracing import Tracer


class MediatorService:
    """A concurrent, observable query-answering service over sources."""

    def __init__(
        self,
        collection: Optional[SourceCollection] = None,
        domain: Sequence = (),
        *,
        config: Optional[SchedulerConfig] = None,
        fault_policy: Optional[FaultPolicy] = None,
        memo: Optional[LRUMemo] = None,
        gateway: Optional[SourceGateway] = None,
    ):
        sources = tuple(collection) if collection is not None else ()
        self.registry = SourceRegistry(sources, domain)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.memo = memo if memo is not None else shared_memo()
        if gateway is not None:
            # An explicit gateway (e.g. PerSourceGateway under a chaos
            # schedule) wins over the whole-read fault policy.
            self.gateway = gateway
        elif fault_policy is not None:
            self.gateway = FaultInjector(
                fault_policy, registry=self.registry
            )
        else:
            self.gateway = SourceGateway()
        self.scheduler = RequestScheduler(
            self.registry,
            gateway=self.gateway,
            metrics=self.metrics,
            tracer=self.tracer,
            config=config,
            memo=self.memo,
        )

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "MediatorService":
        await self.scheduler.start()
        return self

    async def stop(self) -> None:
        await self.scheduler.stop()

    async def __aenter__(self) -> "MediatorService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- querying ----------------------------------------------------------------

    async def confidence(
        self, facts, timeout: Optional[float] = None
    ) -> ServiceResponse:
        """Exact confidences of *facts*, answered against one snapshot."""
        return await self.scheduler.request(facts, timeout=timeout)

    async def answer(
        self, query, timeout: Optional[float] = None
    ) -> ServiceResponse:
        """A conjunctive query's certain-answer lower bound, one snapshot.

        The query is compiled through ``repro.plan`` and evaluated over the
        snapshot's confidence-1 facts; ``response.answers`` carries the
        (sound, under-approximate) certain answers. Queries ride the same
        admission queue, deadlines, and batching as confidence requests.
        """
        return await self.scheduler.request((), timeout=timeout, query=query)

    async def submit(self, facts, timeout: Optional[float] = None, query=None):
        """Admit without awaiting (returns the response future)."""
        return await self.scheduler.submit(facts, timeout=timeout, query=query)

    # -- registry mutations (thread-safe; invalidate the memo incrementally) -----

    def register_source(self, source: SourceDescriptor) -> RegistryDiff:
        old = self.registry.snapshot()
        _snapshot, diff = self.registry.register(source)
        self._after_mutation(old, diff)
        return diff

    def update_source(self, source: SourceDescriptor) -> RegistryDiff:
        old = self.registry.snapshot()
        _snapshot, diff = self.registry.update(source)
        self._after_mutation(old, diff)
        return diff

    def deregister_source(self, name: str) -> RegistryDiff:
        old = self.registry.snapshot()
        _snapshot, diff = self.registry.deregister(name)
        self._after_mutation(old, diff)
        return diff

    def set_domain(self, domain: Sequence) -> RegistryDiff:
        old = self.registry.snapshot()
        _snapshot, diff = self.registry.set_domain(domain)
        self._after_mutation(old, diff)
        return diff

    def _after_mutation(self, old, diff: RegistryDiff) -> None:
        """Drive the whole invalidation bus from one registry diff.

        One tag set — the memo keys the diff retired plus the fact sets of
        every per-version store the scheduler gave up — pushed through one
        ``invalidate_tags`` call retires every derived artifact of the old
        version across every enrolled cache (memo, statistics, data
        sources, partitions, fragment tokens). A private (un-enrolled)
        memo handed to the service is invalidated directly with the same
        keys, so its behavior matches the shared one.
        """
        registry = cache_registry()
        memo_tags = invalidation_tags(old, diff)
        tags = set(memo_tags)
        tags.update(self.scheduler.retire_version_tags(diff.new_version))
        per_cache = registry.invalidate_tags(tags)
        if registry.is_enrolled(self.memo):
            removed = per_cache.get("engine.memo", 0)
        else:
            removed = sum(1 for key in memo_tags if self.memo.discard(key))
        dropped = per_cache.get("plan.statistics", 0)
        self.metrics.counter("registry_mutations").inc()
        self.metrics.counter("memo_entries_invalidated").inc(removed)
        self.metrics.counter("plan_statistics_discarded").inc(dropped)
        self.metrics.counter("cache_entries_invalidated").inc(
            sum(per_cache.values())
        )
        self.metrics.gauge("registry_version").set(diff.new_version)
        self.metrics.histogram("touched_blocks").observe(
            len(diff.touched_blocks)
        )

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """One JSON-serializable snapshot of everything observable.

        Shape (validated by ``tools/check_service_snapshot.py``)::

            {"registry": {...}, "metrics": {counters, gauges, histograms},
             "gateway": {...}, "tracing": {...}, "plan": {cache, data_sources},
             "shard": {shards, workers, counters},
             "cache": {budget_bytes, bytes, hits, misses, evictions,
                       invalidations, caches: {name: {...}}},
             "resilience": {sources, transitions, config}}   # when enabled
        """
        from repro.plan import plan_stats
        from repro.shard import shard_stats

        snapshot = self.registry.snapshot()
        gateway: Dict[str, object] = {"reads": self.gateway.reads}
        if isinstance(self.gateway, FaultInjector):
            gateway.update(
                faults={
                    "latency": self.gateway.policy.latency,
                    "error_rate": self.gateway.policy.error_rate,
                    "stale_rate": self.gateway.policy.stale_rate,
                },
                errors_injected=self.gateway.errors_injected,
                stale_served=self.gateway.stale_served,
            )
        elif isinstance(self.gateway, PerSourceGateway):
            gateway.update(lanes=self.gateway.stats())
        out = {
            "registry": {
                "version": snapshot.version,
                "sources": len(snapshot.collection),
                "domain_size": len(snapshot.domain),
                "retained_versions": self.registry.history_versions(),
            },
            "metrics": self.metrics.snapshot(),
            "gateway": gateway,
            "tracing": {
                "spans_started": self.tracer.spans_started,
                "spans_dropped": self.tracer.spans_dropped,
                "recent_spans": len(self.tracer.export()),
            },
            "plan": plan_stats(),
            "shard": {
                "shards": self.scheduler.config.shards,
                "workers": self.scheduler.config.shard_workers,
                "counters": shard_stats(),
            },
            "cache": cache_registry().stats(),
        }
        if self.scheduler.resilience is not None:
            out["resilience"] = self.scheduler.resilience.stats()
        return out

    def recent_spans(self) -> List[Dict[str, object]]:
        return self.tracer.export()
