"""Fault injection for source reads: latency, transient errors, staleness.

The scheduler never touches a registry snapshot's extensions directly; it
*reads* them through a :class:`SourceGateway`, the seam standing in for the
network fetch a real mediator performs against remote sources (the paper's
§1.1 flaky web sources, §6 caches and mirrors). :class:`FaultInjector`
wraps a gateway with a configurable :class:`FaultPolicy`:

* **latency** — every read sleeps (asyncio, so concurrent batches overlap);
* **transient errors** — reads raise :class:`TransientSourceError` with a
  configured probability, which the scheduler retries with exponential
  backoff; a fault that outlives the retry budget surfaces as an explicit
  ``ERROR`` response, never a crash;
* **staleness** — reads occasionally return a *superseded* registry
  snapshot (a stale mirror), visible to callers through the response's
  ``snapshot_version``.

All randomness is seeded, so every degradation scenario in the tests and in
E16 is reproducible.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ReproError
from repro.service.registry import RegistrySnapshot, SourceRegistry


class TransientSourceError(ReproError):
    """A source read failed in a retryable way (timeouts, flaky mirrors)."""


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of the injected degradation (all off by default).

    ``latency`` is seconds added to every read; ``error_rate`` and
    ``stale_rate`` are probabilities in [0, 1]; ``error_burst`` makes only
    the first N reads fail (``None`` = every read is a coin flip), which
    lets tests script "fails twice, then recovers" deterministically.
    """

    latency: float = 0.0
    error_rate: float = 0.0
    stale_rate: float = 0.0
    error_burst: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        for name in ("error_rate", "stale_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class SourceGateway:
    """The read seam: resolve the snapshot a batch will compute against.

    The base gateway is the no-fault fast path — it returns the snapshot it
    was handed. ``reads`` counts every call (the scheduler's retry loop
    makes the count observable in metrics and tests).
    """

    def __init__(self):
        self.reads = 0

    async def read(self, snapshot: RegistrySnapshot) -> RegistrySnapshot:
        self.reads += 1
        return snapshot


class FaultInjector(SourceGateway):
    """A gateway that degrades reads according to a :class:`FaultPolicy`."""

    def __init__(
        self,
        policy: FaultPolicy,
        registry: Optional[SourceRegistry] = None,
    ):
        super().__init__()
        self.policy = policy
        self.registry = registry  # needed only for staleness injection
        self.errors_injected = 0
        self.stale_served = 0
        self._rng = random.Random(policy.seed)

    async def read(self, snapshot: RegistrySnapshot) -> RegistrySnapshot:
        self.reads += 1
        policy = self.policy
        if policy.latency > 0:
            await asyncio.sleep(policy.latency)
        if policy.error_rate > 0:
            bursting = (
                policy.error_burst is None
                or self.errors_injected < policy.error_burst
            )
            if bursting and self._rng.random() < policy.error_rate:
                self.errors_injected += 1
                raise TransientSourceError(
                    f"injected transient failure (read #{self.reads})"
                )
        if (
            policy.stale_rate > 0
            and self.registry is not None
            and self._rng.random() < policy.stale_rate
        ):
            stale = self._pick_stale(snapshot)
            if stale is not None:
                self.stale_served += 1
                return stale
        return snapshot

    def _pick_stale(
        self, snapshot: RegistrySnapshot
    ) -> Optional[RegistrySnapshot]:
        """The newest retained snapshot strictly older than *snapshot*."""
        older = [
            v for v in self.registry.history_versions() if v < snapshot.version
        ]
        if not older:
            return None
        return self.registry.past_snapshot(max(older))
