"""Fault injection for source reads: latency, errors, staleness, outages.

The scheduler never touches a registry snapshot's extensions directly; it
*reads* them through a :class:`SourceGateway`, the seam standing in for the
network fetch a real mediator performs against remote sources (the paper's
§1.1 flaky web sources, §6 caches and mirrors). :class:`FaultInjector`
wraps a gateway with a configurable :class:`FaultPolicy`:

* **latency** — every read sleeps (asyncio, so concurrent batches overlap);
* **transient errors** — reads raise :class:`TransientSourceError` with a
  configured probability, which the scheduler retries with exponential
  backoff; a fault that outlives the retry budget surfaces as an explicit
  ``ERROR`` response, never a crash;
* **staleness** — reads occasionally return a *superseded* registry
  snapshot (a stale mirror), visible to callers through the response's
  ``snapshot_version``;
* **crash** — reads raise :class:`SourceCrashedError` (a hard failure
  retries cannot fix: the process behind the source is gone);
* **partition** — reads hang (the network path to the source is gone);
  only a caller-side timeout gets control back.

:class:`PerSourceGateway` splits the injector so every source (or source
group) carries its *own* :class:`FaultPolicy` and its own seeded RNG — the
substrate of ``repro.resilience``: circuit breakers probe sources
individually through :meth:`SourceGateway.probe`, so one crashed or
partitioned source degrades only itself, never the batch.

All randomness is seeded, so every degradation scenario in the tests and in
E16/E22 is reproducible.
"""

from __future__ import annotations

import asyncio
import random
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ReproError
from repro.service.registry import RegistrySnapshot, SourceRegistry
from repro.sources.descriptor import SourceDescriptor

#: How long a partitioned read hangs. Effectively forever next to any
#: per-source timeout; finite so a caller that forgot one still returns.
PARTITION_HANG = 3600.0


class TransientSourceError(ReproError):
    """A source read failed in a retryable way (timeouts, flaky mirrors)."""


class SourceCrashedError(ReproError):
    """A source read failed in a non-retryable way (the source is down)."""


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of the injected degradation (all off by default).

    ``latency`` is seconds added to every read; ``error_rate`` and
    ``stale_rate`` are probabilities in [0, 1]; ``error_burst`` makes only
    the first N reads fail (``None`` = every read is a coin flip), which
    lets tests script "fails twice, then recovers" deterministically.
    ``crash`` makes every read raise :class:`SourceCrashedError`;
    ``partition`` makes every read hang until the caller's timeout — the
    two hard outage modes the circuit breakers of ``repro.resilience``
    are built to contain.
    """

    latency: float = 0.0
    error_rate: float = 0.0
    stale_rate: float = 0.0
    error_burst: Optional[int] = None
    seed: int = 0
    crash: bool = False
    partition: bool = False

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        for name in ("error_rate", "stale_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def healthy(self) -> bool:
        """True when this policy injects nothing at all."""
        return (
            self.latency == 0.0
            and self.error_rate == 0.0
            and self.stale_rate == 0.0
            and not self.crash
            and not self.partition
        )


class SourceGateway:
    """The read seam: resolve the snapshot a batch will compute against.

    The base gateway is the no-fault fast path — it returns the snapshot it
    was handed. ``reads`` counts every call (the scheduler's retry loop
    makes the count observable in metrics and tests).
    """

    def __init__(self):
        self.reads = 0

    async def read(self, snapshot: RegistrySnapshot) -> RegistrySnapshot:
        self.reads += 1
        return snapshot

    async def probe(
        self, snapshot: RegistrySnapshot, name: str
    ) -> SourceDescriptor:
        """Read one source of the snapshot (the per-source seam).

        The base gateway always succeeds: it returns the named descriptor.
        :class:`PerSourceGateway` overrides this with per-source fault
        injection; the resilience layer's breakers call it one source at a
        time so failures isolate.
        """
        self.reads += 1
        return snapshot.collection.by_name(name)


class FaultInjector(SourceGateway):
    """A gateway that degrades reads according to a :class:`FaultPolicy`."""

    def __init__(
        self,
        policy: FaultPolicy,
        registry: Optional[SourceRegistry] = None,
    ):
        super().__init__()
        self.policy = policy
        self.registry = registry  # needed only for staleness injection
        self.errors_injected = 0
        self.stale_served = 0
        self._rng = random.Random(policy.seed)

    async def read(self, snapshot: RegistrySnapshot) -> RegistrySnapshot:
        self.reads += 1
        policy = self.policy
        if policy.latency > 0:
            await asyncio.sleep(policy.latency)
        if policy.partition:
            await asyncio.sleep(PARTITION_HANG)
        if policy.crash:
            raise SourceCrashedError(
                f"injected source crash (read #{self.reads})"
            )
        if policy.error_rate > 0:
            bursting = (
                policy.error_burst is None
                or self.errors_injected < policy.error_burst
            )
            if bursting and self._rng.random() < policy.error_rate:
                self.errors_injected += 1
                raise TransientSourceError(
                    f"injected transient failure (read #{self.reads})"
                )
        if (
            policy.stale_rate > 0
            and self.registry is not None
            and self._rng.random() < policy.stale_rate
        ):
            stale = self._pick_stale(snapshot)
            if stale is not None:
                self.stale_served += 1
                return stale
        return snapshot

    def _pick_stale(
        self, snapshot: RegistrySnapshot
    ) -> Optional[RegistrySnapshot]:
        """The newest retained snapshot strictly older than *snapshot*."""
        older = [
            v for v in self.registry.history_versions() if v < snapshot.version
        ]
        if not older:
            return None
        return self.registry.past_snapshot(max(older))


class SourceLane:
    """One source's private fault lane inside a :class:`PerSourceGateway`.

    Carries the source's current :class:`FaultPolicy`, a deterministically
    derived RNG (stable under chaos-schedule policy swaps: the stream is
    seeded once per lane, not per policy), and per-lane counters.
    """

    __slots__ = ("name", "policy", "reads", "errors_injected", "crashes",
                 "partitions", "_rng")

    def __init__(self, name: str, policy: FaultPolicy, seed: int):
        self.name = name
        self.policy = policy
        self.reads = 0
        self.errors_injected = 0
        self.crashes = 0
        self.partitions = 0
        # blake-free stable per-lane seed: crc32 is deterministic across
        # processes and PYTHONHASHSEED values, unlike hash(str).
        self._rng = random.Random(seed ^ zlib.crc32(name.encode("utf-8")))

    async def pass_through(self) -> None:
        """Inject this lane's faults, or return cleanly."""
        self.reads += 1
        policy = self.policy
        if policy.latency > 0:
            await asyncio.sleep(policy.latency)
        if policy.partition:
            self.partitions += 1
            await asyncio.sleep(PARTITION_HANG)
        if policy.crash:
            self.crashes += 1
            raise SourceCrashedError(
                f"source {self.name!r} crashed (read #{self.reads})"
            )
        if policy.error_rate > 0:
            bursting = (
                policy.error_burst is None
                or self.errors_injected < policy.error_burst
            )
            if bursting and self._rng.random() < policy.error_rate:
                self.errors_injected += 1
                raise TransientSourceError(
                    f"injected transient failure on {self.name!r} "
                    f"(read #{self.reads})"
                )

    def counters(self) -> Dict[str, object]:
        return {
            "reads": self.reads,
            "errors_injected": self.errors_injected,
            "crashes": self.crashes,
            "partitions": self.partitions,
            "policy": {
                "latency": self.policy.latency,
                "error_rate": self.policy.error_rate,
                "crash": self.policy.crash,
                "partition": self.policy.partition,
            },
        }


class PerSourceGateway(SourceGateway):
    """A gateway whose fault injection is split per source.

    Each source name resolves to a :class:`SourceLane` holding its own
    policy and seeded RNG; sources without an explicit policy share
    *default* (but still get their own lane and RNG stream, so flipping
    one source's policy mid-run never perturbs another's randomness).
    Policies are swappable at runtime (:meth:`set_policy` /
    :meth:`heal`) — the mutation surface the chaos runner drives.
    """

    def __init__(
        self,
        default: Optional[FaultPolicy] = None,
        policies: Optional[Dict[str, FaultPolicy]] = None,
        registry: Optional[SourceRegistry] = None,
        seed: int = 0,
    ):
        super().__init__()
        self.default = default if default is not None else FaultPolicy()
        self.registry = registry
        self.seed = seed
        self._lanes: Dict[str, SourceLane] = {}
        for name, policy in (policies or {}).items():
            self._lanes[name] = SourceLane(name, policy, seed)

    # -- policy surface (the chaos runner's mutation seam) -----------------------

    def lane(self, name: str) -> SourceLane:
        lane = self._lanes.get(name)
        if lane is None:
            lane = self._lanes[name] = SourceLane(name, self.default, self.seed)
        return lane

    def policy_for(self, name: str) -> FaultPolicy:
        lane = self._lanes.get(name)
        return lane.policy if lane is not None else self.default

    def set_policy(self, name: str, policy: FaultPolicy) -> None:
        """Swap one source's fault policy in place (takes effect next read)."""
        self.lane(name).policy = policy

    def heal(self, name: str) -> None:
        """Clear one source's faults (its lane keeps its counters and RNG)."""
        self.lane(name).policy = FaultPolicy()

    # -- reads -------------------------------------------------------------------

    async def read(self, snapshot: RegistrySnapshot) -> RegistrySnapshot:
        """Whole-snapshot read: every source's lane must pass.

        The batch path of schedulers running *without* a resilience layer:
        equivalent to probing each source sequentially, so a single crashed
        source fails the whole read — exactly the coupling the per-source
        breakers exist to remove.
        """
        self.reads += 1
        for source in snapshot.collection:
            await self.lane(source.name).pass_through()
        return snapshot

    async def probe(
        self, snapshot: RegistrySnapshot, name: str
    ) -> SourceDescriptor:
        """Read one source through its own fault lane."""
        self.reads += 1
        await self.lane(name).pass_through()
        return snapshot.collection.by_name(name)

    def stats(self) -> Dict[str, object]:
        """Per-lane counters (the gateway section of ``stats()``)."""
        return {name: lane.counters() for name, lane in sorted(self._lanes.items())}
