"""``repro.service``: the mediator as a long-running, concurrent service.

See ``docs/service.md`` for the architecture. Layering, bottom up:

* :mod:`~repro.service.requests` — request/response vocabulary with
  explicit terminal statuses (OK / TIMEOUT / REJECTED / ERROR).
* :mod:`~repro.service.registry` — versioned, copy-on-write source
  registry; block-level diffs drive incremental memo invalidation.
* :mod:`~repro.service.faults` — the source-read seam and its fault
  injectors (latency, transient errors, staleness, crashes, partitions),
  all seeded; :class:`PerSourceGateway` gives every source its own lane
  and policy (the seam ``repro.resilience`` probes through).
* :mod:`~repro.service.metrics` / :mod:`~repro.service.tracing` — the
  observability substrate (counters, gauges, percentile histograms,
  bounded trace spans).
* :mod:`~repro.service.scheduler` — bounded admission, deadlines,
  micro-batching, retry with exponential backoff.
* :mod:`~repro.service.server` — :class:`MediatorService`, the composition
  root behind ``python -m repro serve`` and experiment E16.
"""

from repro.service.faults import (
    FaultInjector,
    FaultPolicy,
    PerSourceGateway,
    SourceCrashedError,
    SourceGateway,
    SourceLane,
    TransientSourceError,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.registry import (
    RegistryDiff,
    RegistrySnapshot,
    SourceRegistry,
    diff_snapshots,
    invalidate,
)
from repro.service.requests import (
    ConfidenceRequest,
    RequestStatus,
    ServiceResponse,
)
from repro.service.scheduler import RequestScheduler, SchedulerConfig
from repro.service.server import MediatorService
from repro.service.tracing import Span, Tracer

__all__ = [
    "MediatorService",
    "RequestScheduler",
    "SchedulerConfig",
    "SourceRegistry",
    "RegistrySnapshot",
    "RegistryDiff",
    "diff_snapshots",
    "invalidate",
    "ConfidenceRequest",
    "ServiceResponse",
    "RequestStatus",
    "FaultPolicy",
    "FaultInjector",
    "PerSourceGateway",
    "SourceCrashedError",
    "SourceGateway",
    "SourceLane",
    "TransientSourceError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
]
