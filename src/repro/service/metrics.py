"""Service observability: counters, gauges, and latency histograms.

Deliberately dependency-free (no prometheus client in the container): a
:class:`MetricsRegistry` holds named :class:`Counter`/:class:`Gauge`
instruments and :class:`Histogram` reservoirs, and renders one
JSON-serializable ``snapshot()`` — the shape ``python -m repro serve``
prints, E16 tabulates, and the CI smoke step validates with
``tools/check_service_snapshot.py``.

Histograms keep a bounded uniform reservoir (Vitter's Algorithm R with a
deterministic RNG) so p50/p95/p99 stay accurate without unbounded memory on
a long-running service; ``count``/``sum``/``min``/``max`` are exact.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Sequence

#: Reservoir size: large enough for stable tail percentiles, small enough
#: to snapshot cheaply.
DEFAULT_RESERVOIR = 4096

#: The percentiles every histogram snapshot reports.
PERCENTILES = (0.50, 0.95, 0.99)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, in-flight requests)."""

    __slots__ = ("value", "high_water", "_lock")

    def __init__(self):
        self.value = 0
        self.high_water = 0
        self._lock = threading.Lock()

    def set(self, value: int) -> None:
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount
            if self.value > self.high_water:
                self.high_water = self.value

    def dec(self, amount: int = 1) -> None:
        self.inc(-amount)


class Histogram:
    """Exact count/sum/min/max plus reservoir-sampled percentiles."""

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_capacity",
                 "_rng", "_lock")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR, seed: int = 0):
        if capacity <= 0:
            raise ValueError("Histogram needs a positive reservoir capacity")
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._reservoir) < self._capacity:
                self._reservoir.append(value)
            else:  # Algorithm R: keep each of the n seen with prob cap/n
                slot = self._rng.randrange(self.count)
                if slot < self._capacity:
                    self._reservoir[slot] = value

    def percentile(self, q: float) -> Optional[float]:
        """The q-quantile (0 < q <= 1) of the sampled values; None if empty."""
        with self._lock:
            if not self._reservoir:
                return None
            ordered = sorted(self._reservoir)
        index = max(0, min(len(ordered) - 1, int(q * len(ordered)) - (q == 1.0)))
        return ordered[index]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            mean = self.total / self.count if self.count else None
            out: Dict[str, object] = {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": mean,
            }
        for q in PERCENTILES:
            out[f"p{int(q * 100)}"] = self.percentile(q)
        return out


class MetricsRegistry:
    """Named instruments with one JSON-serializable snapshot.

    Instruments are created on first use (``counter("x").inc()``), so the
    snapshot only carries what the service actually touched, and new code
    paths never need a central declaration site.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def snapshot(self) -> Dict[str, object]:
        """All instruments as plain data: the scrapeable metrics surface."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {
                name: {"value": g.value, "high_water": g.high_water}
                for name, g in sorted(gauges.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }
