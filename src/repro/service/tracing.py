"""Minimal trace spans for the service's request path.

A :class:`Tracer` hands out ``with``-scoped :class:`Span` timers and retains
the most recent completed spans in a bounded ring. Spans carry a name, a
wall-clock duration, free-form attributes, and the id of their parent span,
so a request's path — ``admit → wait → source_read → engine → resolve`` —
reconstructs as a tree. ``export()`` renders plain dicts for the service's
``stats()`` payload; there is no external tracing backend in the container,
and none is needed for the E16 analysis.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

#: Completed spans retained (oldest dropped first).
DEFAULT_SPAN_LIMIT = 512


class Span:
    """One timed section; use as a context manager.

    >>> tracer = Tracer()
    >>> with tracer.span("engine", request_id=7) as span:
    ...     span.attributes["batch_size"] = 3
    >>> tracer.export()[0]["name"]
    'engine'
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "attributes",
                 "started_at", "duration")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, object],
    ):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.started_at = 0.0
        self.duration = 0.0

    def __enter__(self) -> "Span":
        self.started_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.started_at
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.tracer._finish(self)

    def child(self, name: str, **attributes) -> "Span":
        """A new span parented to this one."""
        return self.tracer.span(name, parent=self, **attributes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """A bounded ring of completed spans."""

    def __init__(self, limit: int = DEFAULT_SPAN_LIMIT):
        self._lock = threading.Lock()
        self._finished: Deque[Span] = deque(maxlen=max(1, limit))
        self._ids = itertools.count(1)
        self.spans_started = 0
        self.spans_dropped = 0

    def span(
        self, name: str, parent: Optional[Span] = None, **attributes
    ) -> Span:
        with self._lock:
            self.spans_started += 1
            span_id = next(self._ids)
        return Span(
            self,
            name,
            span_id,
            parent.span_id if parent is not None else None,
            dict(attributes),
        )

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self.spans_dropped += 1
            self._finished.append(span)

    def export(self) -> List[Dict[str, object]]:
        """Completed spans, oldest first, as plain dicts."""
        with self._lock:
            return [span.to_dict() for span in self._finished]

    def durations(self, name: str) -> List[float]:
        """Durations of completed spans with the given name (for tests)."""
        with self._lock:
            return [s.duration for s in self._finished if s.name == name]
