"""Admission, batching, deadlines, retries: the service's event loop.

One asyncio worker drains a bounded admission queue. The control flow per
iteration:

1. **admit** — :meth:`RequestScheduler.submit` pins the current registry
   snapshot, stamps the deadline, and enqueues; a full queue rejects
   *immediately* with an explicit reason (load shedding at the door beats
   queueing work that will only time out).
2. **batch** — the worker takes the oldest request, then lingers up to
   ``batch_window`` collecting more requests pinned to the *same* snapshot
   version (compatibility criterion), up to ``max_batch``. One engine call
   serves the whole batch: the counting problems of a batch's facts share
   the denominator sweep and the memo, so k requests cost far less than k
   dispatches — E16 measures the margin.
3. **expire** — requests whose deadline passed while queued are answered
   ``TIMEOUT`` before any work is spent on them; deadlines are re-checked
   after compute so a slow read never converts into a silently late answer.
4. **read & retry** — the batch's snapshot is resolved through the source
   gateway (the fault-injection seam) with exponential backoff (plus
   seeded jitter) on :class:`~repro.service.faults.TransientSourceError`;
   the retry loop never sleeps past the batch's earliest request deadline,
   and a read that outlives the budget fails the batch with explicit
   ``ERROR`` responses. With a :class:`ResilienceConfig` set, the whole-
   batch read is replaced by the per-source availability pass of
   :class:`~repro.resilience.manager.ResilienceManager`: circuit breakers,
   per-source timeouts, hedged probes — unavailable sources are *excluded*
   rather than failing the batch.
5. **compute & resolve** — exact confidences from the snapshot's engine;
   when sources were excluded, the engine runs over the snapshot with
   those annotations demoted (``repro.resilience.degrade``) and responses
   carry ``degraded`` / ``excluded_sources`` / per-answer guarantee
   metadata; every future resolves with a :class:`ServiceResponse`, never
   an exception.

Everything observable lands in the shared :class:`MetricsRegistry` (queue
depth, batch sizes, per-status latency histograms, retry counts, breaker
transitions) and the :class:`Tracer` (per-batch ``source_read`` /
``engine`` spans).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.confidence.engine import ConfidenceEngine
from repro.confidence.engine.memo import LRUMemo
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.service.faults import SourceGateway, TransientSourceError
from repro.service.metrics import MetricsRegistry
from repro.service.registry import RegistrySnapshot, SourceRegistry
from repro.service.requests import (
    ConfidenceRequest,
    RequestStatus,
    ServiceResponse,
)
from repro.service.tracing import Tracer

#: No sources excluded: the well-known key suffix of healthy stores.
NO_EXCLUSIONS: FrozenSet[str] = frozenset()


def _store_key_order(key: Tuple[int, FrozenSet[str]]):
    """Total order for (version, excluded) store keys — frozensets are not
    orderable, so eviction loops sort by (version, size, sorted names)."""
    return (key[0], len(key[1]), tuple(sorted(key[1])))


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs of the request path.

    ``max_batch = 1`` disables micro-batching (per-request dispatch, the
    E16 baseline); ``batch_window`` is how long the worker lingers for
    batch-mates once it holds a request — zero means "batch only what is
    already queued".
    """

    max_queue: int = 256
    max_batch: int = 16
    batch_window: float = 0.002
    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    engine_workers: int = 0
    #: memo capacity per engine when the scheduler has no explicit memo
    #: (None = process-wide shared memo, 0 = memoization off — E16's ablation)
    engine_cache_size: Optional[int] = None
    #: shards for the query path's certain database (1 = single store)
    shards: int = 1
    #: worker processes for scatter-gather fragments (0/1 = serial)
    shard_workers: int = 0
    #: fraction of extra seeded jitter on each retry delay (0 = none);
    #: delay_j = backoff(a) · (1 + U[0,1) · backoff_jitter)
    backoff_jitter: float = 0.0
    backoff_seed: int = 0
    #: per-source availability layer; None = legacy whole-batch reads
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self):
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Delay before retry *attempt* (1-based): base·2^(a−1), capped."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


class RequestScheduler:
    """The admission queue and its single batching worker."""

    def __init__(
        self,
        registry: SourceRegistry,
        gateway: Optional[SourceGateway] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        config: Optional[SchedulerConfig] = None,
        memo: Optional[LRUMemo] = None,
    ):
        self.registry = registry
        self.gateway = gateway if gateway is not None else SourceGateway()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.config = config if config is not None else SchedulerConfig()
        self.memo = memo
        self._queue: Optional[asyncio.Queue] = None
        self._carry: Optional[Tuple[ConfidenceRequest, RegistrySnapshot,
                                    "asyncio.Future"]] = None
        self._inflight: List = []
        self._worker: Optional[asyncio.Task] = None
        # Per-version stores, keyed (version, excluded-source frozenset):
        # a degraded batch computes over the *demoted* snapshot, which is
        # a different instance than the healthy one at the same version.
        self._engines: Dict[Tuple[int, FrozenSet[str]], ConfidenceEngine] = {}
        self._certain_dbs: Dict[Tuple[int, FrozenSet[str]], GlobalDatabase] = {}
        self._shard_executors: Dict[Tuple[int, FrozenSet[str]], object] = {}
        self._weakened: Dict[Tuple[int, FrozenSet[str]], RegistrySnapshot] = {}
        self._backoff_rng = random.Random(self.config.backoff_seed)
        self.resilience: Optional[ResilienceManager] = None
        if self.config.resilience is not None:
            self.resilience = ResilienceManager(
                self.config.resilience, metrics=self.metrics
            )
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._carry = None
        self._running = True
        self._worker = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop the worker; queued-but-unanswered requests are rejected."""
        if not self._running:
            return
        self._running = False
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            except Exception:  # worker bug: still reject its in-flight batch
                pass
            self._worker = None
        leftovers = [
            item for item in self._inflight if not item[2].done()
        ]
        self._inflight = []
        if self._carry is not None:
            leftovers.append(self._carry)
            self._carry = None
        while self._queue is not None and not self._queue.empty():
            leftovers.append(self._queue.get_nowait())
        for request, _snapshot, future in leftovers:
            self._resolve(
                request, future,
                ServiceResponse(
                    request.request_id, RequestStatus.REJECTED,
                    reason="service stopped before the request was served",
                    snapshot_version=request.snapshot_version,
                ),
            )
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()
        self._certain_dbs.clear()
        for executor in self._shard_executors.values():
            executor.close()
        self._shard_executors.clear()
        self._weakened.clear()

    # -- admission ---------------------------------------------------------------

    async def submit(
        self, facts, timeout: Optional[float] = None, query=None
    ) -> "asyncio.Future[ServiceResponse]":
        """Admit one request; returns a future resolving to its response.

        The registry snapshot is pinned *here*: mutations landing after
        admission are invisible to this request (snapshot isolation).
        A request may ask for fact confidences, a conjunctive query's
        certain-answer lower bound, or both — but not neither.
        """
        if self._queue is None:
            raise ReproError("scheduler is not started")
        loop = asyncio.get_running_loop()
        now = loop.time()
        snapshot = self.registry.snapshot()
        request = ConfidenceRequest(
            facts=tuple(facts),
            deadline=None if timeout is None else now + timeout,
            snapshot_version=snapshot.version,
            submitted_at=now,
            query=query,
        )
        future: "asyncio.Future[ServiceResponse]" = loop.create_future()
        self.metrics.counter("requests_submitted").inc()
        if not request.facts and request.query is None:
            self._resolve(
                request, future,
                ServiceResponse(
                    request.request_id, RequestStatus.REJECTED,
                    reason="empty fact list",
                    snapshot_version=snapshot.version,
                ),
            )
            return future
        try:
            self._queue.put_nowait((request, snapshot, future))
        except asyncio.QueueFull:
            self._resolve(
                request, future,
                ServiceResponse(
                    request.request_id, RequestStatus.REJECTED,
                    reason=(
                        f"admission queue full "
                        f"({self.config.max_queue} requests waiting)"
                    ),
                    snapshot_version=snapshot.version,
                ),
            )
            return future
        self.metrics.gauge("queue_depth").set(self._queue.qsize())
        return future

    async def request(
        self, facts, timeout: Optional[float] = None, query=None
    ) -> ServiceResponse:
        """Submit and await in one call."""
        return await (await self.submit(facts, timeout=timeout, query=query))

    # -- the worker --------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            batch = await self._collect_batch()
            if batch:
                await self._serve_batch(batch)

    async def _collect_batch(self):
        """The oldest request plus same-version batch-mates."""
        queue = self._queue
        if self._carry is not None:
            first, self._carry = self._carry, None
        else:
            first = await queue.get()
        batch = [first]
        version = first[0].snapshot_version
        window = self.config.batch_window
        loop = asyncio.get_running_loop()
        linger_until = loop.time() + window
        while len(batch) < self.config.max_batch:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                remaining = linger_until - loop.time()
                if remaining <= 0 or window <= 0:
                    break
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item[0].snapshot_version != version:
                # Incompatible: becomes the seed of the next batch.
                self._carry = item
                break
            batch.append(item)
        self.metrics.gauge("queue_depth").set(queue.qsize())
        return batch

    async def _serve_batch(self, batch) -> None:
        # Cleared only on normal completion: if the worker is cancelled
        # mid-batch, stop() finds the batch here and rejects its futures.
        self._inflight = batch
        await self._serve_batch_inner(batch)
        self._inflight = []

    async def _serve_batch_inner(self, batch) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live = []
        for request, snapshot, future in batch:
            if request.expired(now):
                self._resolve(
                    request, future,
                    ServiceResponse(
                        request.request_id, RequestStatus.TIMEOUT,
                        reason="deadline expired while queued",
                        snapshot_version=request.snapshot_version,
                        latency=now - request.submitted_at,
                    ),
                )
            else:
                live.append((request, snapshot, future))
        if not live:
            return
        self.metrics.histogram("batch_size").observe(len(live))
        snapshot = live[0][1]
        deadline = self._batch_deadline(live)
        with self.tracer.span(
            "batch", version=snapshot.version, size=len(live)
        ) as span:
            try:
                if self.resilience is not None:
                    report = await self.resilience.resolve(
                        snapshot, self.gateway
                    )
                    resolved, attempts = snapshot, 1
                    excluded = frozenset(report.excluded)
                    if excluded:
                        self.metrics.counter("degraded_batches").inc()
                        span.attributes["excluded_sources"] = sorted(excluded)
                else:
                    resolved, attempts = await self._read_with_retry(
                        snapshot, span, deadline
                    )
                    excluded = NO_EXCLUSIONS
                confidences = self._compute(resolved, live, span, excluded)
                answers, downgraded = self._answer_queries(
                    resolved, live, span, excluded
                )
            except ReproError as exc:
                now = loop.time()
                for request, _snapshot, future in live:
                    self._resolve(
                        request, future,
                        ServiceResponse(
                            request.request_id, RequestStatus.ERROR,
                            reason=str(exc),
                            snapshot_version=snapshot.version,
                            latency=now - request.submitted_at,
                            batch_size=len(live),
                        ),
                    )
                return
            now = loop.time()
            for request, _snapshot, future in live:
                if request.expired(now):
                    response = ServiceResponse(
                        request.request_id, RequestStatus.TIMEOUT,
                        reason="deadline expired during computation",
                        snapshot_version=resolved.version,
                        latency=now - request.submitted_at,
                        batch_size=len(live),
                        attempts=attempts,
                    )
                else:
                    response = ServiceResponse(
                        request.request_id, RequestStatus.OK,
                        confidences={
                            f: confidences[f] for f in request.facts
                        },
                        snapshot_version=resolved.version,
                        latency=now - request.submitted_at,
                        batch_size=len(live),
                        attempts=attempts,
                        answers=answers.get(request.request_id, ()),
                        degraded=bool(excluded),
                        excluded_sources=tuple(sorted(excluded)),
                        guarantee="degraded" if excluded else "certain",
                        downgraded_answers=downgraded.get(
                            request.request_id, ()
                        ),
                    )
                self._resolve(request, future, response)

    @staticmethod
    def _batch_deadline(live) -> Optional[float]:
        """The batch's earliest absolute deadline (None = unbounded)."""
        deadlines = [
            request.deadline for request, _s, _f in live
            if request.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    async def _read_with_retry(self, snapshot, span, deadline=None):
        """Resolve the batch's snapshot through the gateway, with backoff.

        The delay before each retry carries seeded jitter
        (``config.backoff_jitter``) so synchronized batches do not retry
        in lockstep, and the loop never sleeps past *deadline* (the
        batch's earliest request deadline): a backoff that would overrun
        it fails fast with :class:`TransientSourceError` instead — the
        caller turns that into structured ``ERROR`` responses, never an
        unhandled exception or a guaranteed-late answer.
        """
        config = self.config
        loop = asyncio.get_running_loop()
        for attempt in range(1, config.max_attempts + 1):
            try:
                with span.child(
                    "source_read", version=snapshot.version, attempt=attempt
                ):
                    resolved = await self.gateway.read(snapshot)
                return resolved, attempt
            except TransientSourceError:
                self.metrics.counter("source_read_retries").inc()
                if attempt == config.max_attempts:
                    raise
                delay = config.backoff(attempt)
                if config.backoff_jitter > 0:
                    delay *= 1.0 + config.backoff_jitter * self._backoff_rng.random()
                if deadline is not None and loop.time() + delay > deadline:
                    self.metrics.counter("retry_budget_exhausted").inc()
                    raise TransientSourceError(
                        f"retry budget exhausted after attempt {attempt}: "
                        f"backing off {delay:.3f}s would overrun the "
                        "batch's earliest deadline"
                    )
                await asyncio.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _compute(
        self, snapshot: RegistrySnapshot, live, span,
        excluded: FrozenSet[str] = NO_EXCLUSIONS,
    ) -> Dict[Atom, Fraction]:
        """Exact confidences for every fact the batch asks about.

        With *excluded* non-empty the engine runs over the snapshot with
        those sources' annotations demoted to ⟨c=0, s=0⟩: their extensions
        stay in the fact space (confidences of their facts remain
        well-defined) but their bounds no longer constrain the possible
        worlds.
        """
        engine = self._engine_for(snapshot, excluded)
        wanted = {f for request, _s, _f in live for f in request.facts}
        with span.child("engine", version=snapshot.version, facts=len(wanted)):
            self.metrics.counter("engine_calls").inc()
            confidences = dict(engine.confidences())
            instance = engine.instance
            for f in wanted:
                renamed = Atom(instance.relation, f.args)
                if renamed in confidences:
                    confidences.setdefault(f, confidences[renamed])
                    continue
                if f in confidences:
                    continue
                # Anonymous or out-of-space fact: one (memoized) extra task.
                confidences[f] = engine.confidence(f)
        return confidences

    def _answer_queries(
        self, snapshot: RegistrySnapshot, live, span,
        excluded: FrozenSet[str] = NO_EXCLUSIONS,
    ) -> Tuple[Dict[int, Tuple[Atom, ...]], Dict[int, Tuple[Atom, ...]]]:
        """Certain-answer lower bounds for the batch's query requests.

        The snapshot's confidence-1 facts form a database contained in every
        possible world, so by monotonicity any conjunctive answer over it is
        certain (cf. ``repro.confidence.answers.certain_answer_lower_bound``).
        The query runs through the compiled-plan pipeline; the certain
        database is cached per snapshot version, so batch-mates and repeat
        queries share its scan rows and join indexes. With ``config.shards
        > 1`` execution scatter-gathers over the version's sharded store.

        Returns ``(answers, downgraded)`` keyed by request id. With
        *excluded* sources the answers come from the *demoted* snapshot —
        poss(S') ⊇ poss(S), so they stay a sound (certain) subset of the
        healthy answers — and ``downgraded`` holds the healthy-minus-
        degraded difference: answers the lost sources' annotations were
        needed to certify, now merely possible. Both render in the
        canonical total order (:func:`repro.shard.merge.canonical_order`)
        — ``key=str`` is not total over heterogeneous constants, so equal
        answer sets could serialize differently across runs.
        """
        queried = [
            request for request, _snapshot, _future in live
            if request.query is not None
        ]
        out: Dict[int, Tuple[Atom, ...]] = {}
        downgraded_out: Dict[int, Tuple[Atom, ...]] = {}
        if not queried:
            return out, downgraded_out
        from repro.plan import evaluate as plan_evaluate, optimizer_stats
        from repro.resilience.degrade import downgraded as grade_downgraded
        from repro.shard import canonical_order, shard_stats

        sharded = self.config.shards > 1
        executor = self._shard_executor(snapshot, excluded) if sharded else None
        database = (
            None if sharded else self._certain_database(snapshot, excluded)
        )
        # The healthy-baseline certain DB, to grade what the demotion cost.
        full_database = (
            self._certain_database(snapshot, NO_EXCLUSIONS) if excluded
            else None
        )
        with span.child(
            "query_answers", version=snapshot.version, queries=len(queried)
        ):
            self.metrics.counter("query_requests").inc(len(queried))
            before = optimizer_stats()
            shard_before = shard_stats() if sharded else {}
            for request in queried:
                if executor is not None:
                    answers = executor.answer_ordered(request.query)
                else:
                    answers = canonical_order(
                        plan_evaluate(request.query, database)
                    )
                out[request.request_id] = answers
                if full_database is not None:
                    full = plan_evaluate(request.query, full_database)
                    downgraded_out[request.request_id] = grade_downgraded(
                        full, answers
                    )
            self._record_optimizer_metrics(before, optimizer_stats())
            if sharded:
                self._record_shard_metrics(shard_before, shard_stats())
        return out, downgraded_out

    def _record_shard_metrics(self, before: Dict, after: Dict) -> None:
        """Fold this batch's shard-execution deltas into the metrics."""
        for name in (
            "queries",
            "fragments_executed",
            "shards_pruned",
            "worker_misses",
            "pool_respawns",
            "pool_serial_fallbacks",
        ):
            delta = (after.get(name) or 0) - (before.get(name) or 0)
            if delta:
                self.metrics.counter(f"shard_{name}").inc(delta)

    def _record_optimizer_metrics(self, before: Dict, after: Dict) -> None:
        """Fold this batch's optimizer activity into the metrics registry.

        The optimizer's counters are process-wide; the per-batch *delta* is
        what this service instance actually caused, so that is what lands in
        its :class:`MetricsRegistry` (``plan_misestimates``,
        ``plan_reoptimizations``, ...).
        """
        for name in (
            "plans_optimized",
            "feedback_checks",
            "misestimates",
            "reoptimizations",
        ):
            delta = (after.get(name) or 0) - (before.get(name) or 0)
            if delta:
                self.metrics.counter(f"plan_{name}").inc(delta)
        max_q = after.get("max_q_error")
        if max_q and max_q != before.get("max_q_error"):
            self.metrics.histogram("plan_q_error").observe(max_q)

    def _working_snapshot(
        self, snapshot: RegistrySnapshot, excluded: FrozenSet[str]
    ) -> RegistrySnapshot:
        """*snapshot*, or its demoted twin when sources are excluded.

        The twin shares the version (callers still see the snapshot they
        pinned) but carries the collection with excluded sources' bounds
        weakened to ⟨0, 0⟩; cached per (version, excluded) because
        demotion re-interns the collection.
        """
        if not excluded:
            return snapshot
        key = (snapshot.version, excluded)
        weakened = self._weakened.get(key)
        if weakened is None:
            from repro.resilience.degrade import demote

            weakened = RegistrySnapshot(
                version=snapshot.version,
                collection=demote(snapshot.collection, excluded),
                domain=snapshot.domain,
            )
            self._weakened[key] = weakened
            while len(self._weakened) > 16:
                oldest = min(self._weakened, key=_store_key_order)
                if oldest == key:
                    break
                self._weakened.pop(oldest)
        return weakened

    def _certain_database(
        self, snapshot: RegistrySnapshot,
        excluded: FrozenSet[str] = NO_EXCLUSIONS,
    ) -> GlobalDatabase:
        """The snapshot's confidence-1 facts as one database (cached)."""
        key = (snapshot.version, excluded)
        database = self._certain_dbs.get(key)
        if database is None:
            engine = self._engine_for(snapshot, excluded)
            database = GlobalDatabase(
                f for f, confidence in engine.confidences().items()
                if confidence == 1
            )
            self._certain_dbs[key] = database
            while len(self._certain_dbs) > 8:
                oldest = min(self._certain_dbs, key=_store_key_order)
                if oldest == key:
                    break
                self._certain_dbs.pop(oldest)
        return database

    def _shard_executor(
        self, snapshot: RegistrySnapshot,
        excluded: FrozenSet[str] = NO_EXCLUSIONS,
    ):
        """The snapshot's scatter-gather executor (per-version cache).

        The sharded store partitions the same certain database the
        single-store path queries, under a spec built from the config's
        shard count; fragments and their plan-layer caches are shared by
        every batch pinned to this version (and exclusion set).
        """
        from repro.shard import PartitionSpec, ShardedDatabase, ShardExecutor

        key = (snapshot.version, excluded)
        executor = self._shard_executors.get(key)
        if executor is None:
            store = ShardedDatabase(
                self._certain_database(snapshot, excluded),
                PartitionSpec(self.config.shards),
            )
            executor = ShardExecutor(
                store, workers=self.config.shard_workers
            )
            self._shard_executors[key] = executor
            while len(self._shard_executors) > 8:
                oldest = min(self._shard_executors, key=_store_key_order)
                if oldest == key:
                    break
                self._shard_executors.pop(oldest).close()
        return executor

    def retire_version_tags(self, before_version: int) -> set:
        """Pop per-version stores pre-dating *before_version*; return tags.

        Certain databases and shard executors of superseded versions will
        never serve another request, so their per-version slots are freed
        here — but the *derived artifacts* they seeded (statistics, data
        sources, partition layouts, fragment tokens) live in the enrolled
        caches, keyed or tagged by fact set. The returned tag set — each
        retired certain core plus every fragment a retired sharded store
        materialized — is what the invalidation bus needs to clear all of
        them in one :meth:`~repro.cache.CacheRegistry.invalidate_tags`
        call. Retired sharded stores are counted under
        ``shard_stores_discarded``.
        """
        tags: set = set()
        for key in [k for k in self._certain_dbs if k[0] < before_version]:
            database = self._certain_dbs.pop(key)
            tags.add(database.core())
        retired = 0
        for key in [
            k for k in self._shard_executors if k[0] < before_version
        ]:
            executor = self._shard_executors.pop(key)
            tags.update(executor.sharded.built_fragments())
            executor.close()
            retired += 1
        if retired:
            self.metrics.counter("shard_stores_discarded").inc(retired)
        for key in [k for k in self._weakened if k[0] < before_version]:
            self._weakened.pop(key)
        return tags

    def discard_plan_statistics(self, before_version: int) -> int:
        """Retire superseded versions' derived entries through the bus.

        The pre-bus entry point, kept for callers that retire versions
        outside a registry mutation (the sharded-service tests drive it
        directly): collects this scheduler's retirement tags and pushes
        them through the process cache registry. Returns how many
        statistics-catalog entries the bus dropped. Entries are
        content-addressed, so all of this is hygiene, never correctness.
        """
        from repro.cache import cache_registry

        per_cache = cache_registry().invalidate_tags(
            self.retire_version_tags(before_version)
        )
        return per_cache.get("plan.statistics", 0)

    def _engine_for(
        self, snapshot: RegistrySnapshot,
        excluded: FrozenSet[str] = NO_EXCLUSIONS,
    ) -> ConfidenceEngine:
        key = (snapshot.version, excluded)
        engine = self._engines.get(key)
        if engine is None:
            engine = ConfidenceEngine(
                self._working_snapshot(snapshot, excluded).instance(),
                workers=self.config.engine_workers,
                memo=self.memo,
                cache_size=self.config.engine_cache_size,
            )
            self._engines[key] = engine
            while len(self._engines) > 8:  # superseded versions age out
                oldest = min(self._engines, key=_store_key_order)
                if oldest == key:
                    break
                self._engines.pop(oldest).close()
        return engine

    # -- resolution --------------------------------------------------------------

    def _resolve(self, request, future, response: ServiceResponse) -> None:
        self.metrics.counter(f"responses_{response.status.value}").inc()
        if response.degraded:
            self.metrics.counter("responses_degraded").inc()
        self.metrics.histogram("latency").observe(response.latency)
        self.metrics.histogram(
            f"latency_{response.status.value}"
        ).observe(response.latency)
        if not future.done():
            future.set_result(response)
