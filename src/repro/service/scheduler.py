"""Admission, batching, deadlines, retries: the service's event loop.

One asyncio worker drains a bounded admission queue. The control flow per
iteration:

1. **admit** — :meth:`RequestScheduler.submit` pins the current registry
   snapshot, stamps the deadline, and enqueues; a full queue rejects
   *immediately* with an explicit reason (load shedding at the door beats
   queueing work that will only time out).
2. **batch** — the worker takes the oldest request, then lingers up to
   ``batch_window`` collecting more requests pinned to the *same* snapshot
   version (compatibility criterion), up to ``max_batch``. One engine call
   serves the whole batch: the counting problems of a batch's facts share
   the denominator sweep and the memo, so k requests cost far less than k
   dispatches — E16 measures the margin.
3. **expire** — requests whose deadline passed while queued are answered
   ``TIMEOUT`` before any work is spent on them; deadlines are re-checked
   after compute so a slow read never converts into a silently late answer.
4. **read & retry** — the batch's snapshot is resolved through the source
   gateway (the fault-injection seam) with exponential backoff on
   :class:`~repro.service.faults.TransientSourceError`; a read that outlives
   the retry budget fails the batch with explicit ``ERROR`` responses.
5. **compute & resolve** — exact confidences from the snapshot's engine;
   every future resolves with a :class:`ServiceResponse`, never an
   exception.

Everything observable lands in the shared :class:`MetricsRegistry` (queue
depth, batch sizes, per-status latency histograms, retry counts) and the
:class:`Tracer` (per-batch ``source_read`` / ``engine`` spans).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.confidence.engine import ConfidenceEngine
from repro.confidence.engine.memo import LRUMemo
from repro.service.faults import SourceGateway, TransientSourceError
from repro.service.metrics import MetricsRegistry
from repro.service.registry import RegistrySnapshot, SourceRegistry
from repro.service.requests import (
    ConfidenceRequest,
    RequestStatus,
    ServiceResponse,
)
from repro.service.tracing import Tracer


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs of the request path.

    ``max_batch = 1`` disables micro-batching (per-request dispatch, the
    E16 baseline); ``batch_window`` is how long the worker lingers for
    batch-mates once it holds a request — zero means "batch only what is
    already queued".
    """

    max_queue: int = 256
    max_batch: int = 16
    batch_window: float = 0.002
    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    engine_workers: int = 0
    #: memo capacity per engine when the scheduler has no explicit memo
    #: (None = process-wide shared memo, 0 = memoization off — E16's ablation)
    engine_cache_size: Optional[int] = None
    #: shards for the query path's certain database (1 = single store)
    shards: int = 1
    #: worker processes for scatter-gather fragments (0/1 = serial)
    shard_workers: int = 0

    def __post_init__(self):
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Delay before retry *attempt* (1-based): base·2^(a−1), capped."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


class RequestScheduler:
    """The admission queue and its single batching worker."""

    def __init__(
        self,
        registry: SourceRegistry,
        gateway: Optional[SourceGateway] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        config: Optional[SchedulerConfig] = None,
        memo: Optional[LRUMemo] = None,
    ):
        self.registry = registry
        self.gateway = gateway if gateway is not None else SourceGateway()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.config = config if config is not None else SchedulerConfig()
        self.memo = memo
        self._queue: Optional[asyncio.Queue] = None
        self._carry: Optional[Tuple[ConfidenceRequest, RegistrySnapshot,
                                    "asyncio.Future"]] = None
        self._inflight: List = []
        self._worker: Optional[asyncio.Task] = None
        self._engines: Dict[int, ConfidenceEngine] = {}
        self._certain_dbs: Dict[int, GlobalDatabase] = {}
        self._shard_executors: Dict[int, object] = {}
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._carry = None
        self._running = True
        self._worker = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop the worker; queued-but-unanswered requests are rejected."""
        if not self._running:
            return
        self._running = False
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            except Exception:  # worker bug: still reject its in-flight batch
                pass
            self._worker = None
        leftovers = [
            item for item in self._inflight if not item[2].done()
        ]
        self._inflight = []
        if self._carry is not None:
            leftovers.append(self._carry)
            self._carry = None
        while self._queue is not None and not self._queue.empty():
            leftovers.append(self._queue.get_nowait())
        for request, _snapshot, future in leftovers:
            self._resolve(
                request, future,
                ServiceResponse(
                    request.request_id, RequestStatus.REJECTED,
                    reason="service stopped before the request was served",
                    snapshot_version=request.snapshot_version,
                ),
            )
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()
        self._certain_dbs.clear()
        for executor in self._shard_executors.values():
            executor.close()
        self._shard_executors.clear()

    # -- admission ---------------------------------------------------------------

    async def submit(
        self, facts, timeout: Optional[float] = None, query=None
    ) -> "asyncio.Future[ServiceResponse]":
        """Admit one request; returns a future resolving to its response.

        The registry snapshot is pinned *here*: mutations landing after
        admission are invisible to this request (snapshot isolation).
        A request may ask for fact confidences, a conjunctive query's
        certain-answer lower bound, or both — but not neither.
        """
        if self._queue is None:
            raise ReproError("scheduler is not started")
        loop = asyncio.get_running_loop()
        now = loop.time()
        snapshot = self.registry.snapshot()
        request = ConfidenceRequest(
            facts=tuple(facts),
            deadline=None if timeout is None else now + timeout,
            snapshot_version=snapshot.version,
            submitted_at=now,
            query=query,
        )
        future: "asyncio.Future[ServiceResponse]" = loop.create_future()
        self.metrics.counter("requests_submitted").inc()
        if not request.facts and request.query is None:
            self._resolve(
                request, future,
                ServiceResponse(
                    request.request_id, RequestStatus.REJECTED,
                    reason="empty fact list",
                    snapshot_version=snapshot.version,
                ),
            )
            return future
        try:
            self._queue.put_nowait((request, snapshot, future))
        except asyncio.QueueFull:
            self._resolve(
                request, future,
                ServiceResponse(
                    request.request_id, RequestStatus.REJECTED,
                    reason=(
                        f"admission queue full "
                        f"({self.config.max_queue} requests waiting)"
                    ),
                    snapshot_version=snapshot.version,
                ),
            )
            return future
        self.metrics.gauge("queue_depth").set(self._queue.qsize())
        return future

    async def request(
        self, facts, timeout: Optional[float] = None, query=None
    ) -> ServiceResponse:
        """Submit and await in one call."""
        return await (await self.submit(facts, timeout=timeout, query=query))

    # -- the worker --------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            batch = await self._collect_batch()
            if batch:
                await self._serve_batch(batch)

    async def _collect_batch(self):
        """The oldest request plus same-version batch-mates."""
        queue = self._queue
        if self._carry is not None:
            first, self._carry = self._carry, None
        else:
            first = await queue.get()
        batch = [first]
        version = first[0].snapshot_version
        window = self.config.batch_window
        loop = asyncio.get_running_loop()
        linger_until = loop.time() + window
        while len(batch) < self.config.max_batch:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                remaining = linger_until - loop.time()
                if remaining <= 0 or window <= 0:
                    break
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item[0].snapshot_version != version:
                # Incompatible: becomes the seed of the next batch.
                self._carry = item
                break
            batch.append(item)
        self.metrics.gauge("queue_depth").set(queue.qsize())
        return batch

    async def _serve_batch(self, batch) -> None:
        # Cleared only on normal completion: if the worker is cancelled
        # mid-batch, stop() finds the batch here and rejects its futures.
        self._inflight = batch
        await self._serve_batch_inner(batch)
        self._inflight = []

    async def _serve_batch_inner(self, batch) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live = []
        for request, snapshot, future in batch:
            if request.expired(now):
                self._resolve(
                    request, future,
                    ServiceResponse(
                        request.request_id, RequestStatus.TIMEOUT,
                        reason="deadline expired while queued",
                        snapshot_version=request.snapshot_version,
                        latency=now - request.submitted_at,
                    ),
                )
            else:
                live.append((request, snapshot, future))
        if not live:
            return
        self.metrics.histogram("batch_size").observe(len(live))
        snapshot = live[0][1]
        with self.tracer.span(
            "batch", version=snapshot.version, size=len(live)
        ) as span:
            try:
                resolved, attempts = await self._read_with_retry(
                    snapshot, span
                )
                confidences = self._compute(resolved, live, span)
                answers = self._answer_queries(resolved, live, span)
            except ReproError as exc:
                now = loop.time()
                for request, _snapshot, future in live:
                    self._resolve(
                        request, future,
                        ServiceResponse(
                            request.request_id, RequestStatus.ERROR,
                            reason=str(exc),
                            snapshot_version=snapshot.version,
                            latency=now - request.submitted_at,
                            batch_size=len(live),
                        ),
                    )
                return
            now = loop.time()
            for request, _snapshot, future in live:
                if request.expired(now):
                    response = ServiceResponse(
                        request.request_id, RequestStatus.TIMEOUT,
                        reason="deadline expired during computation",
                        snapshot_version=resolved.version,
                        latency=now - request.submitted_at,
                        batch_size=len(live),
                        attempts=attempts,
                    )
                else:
                    response = ServiceResponse(
                        request.request_id, RequestStatus.OK,
                        confidences={
                            f: confidences[f] for f in request.facts
                        },
                        snapshot_version=resolved.version,
                        latency=now - request.submitted_at,
                        batch_size=len(live),
                        attempts=attempts,
                        answers=answers.get(request.request_id, ()),
                    )
                self._resolve(request, future, response)

    async def _read_with_retry(self, snapshot, span):
        """Resolve the batch's snapshot through the gateway, with backoff."""
        config = self.config
        for attempt in range(1, config.max_attempts + 1):
            try:
                with span.child(
                    "source_read", version=snapshot.version, attempt=attempt
                ):
                    resolved = await self.gateway.read(snapshot)
                return resolved, attempt
            except TransientSourceError:
                self.metrics.counter("source_read_retries").inc()
                if attempt == config.max_attempts:
                    raise
                await asyncio.sleep(config.backoff(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _compute(
        self, snapshot: RegistrySnapshot, live, span
    ) -> Dict[Atom, Fraction]:
        """Exact confidences for every fact the batch asks about."""
        engine = self._engine_for(snapshot)
        wanted = {f for request, _s, _f in live for f in request.facts}
        with span.child("engine", version=snapshot.version, facts=len(wanted)):
            self.metrics.counter("engine_calls").inc()
            confidences = dict(engine.confidences())
            instance = engine.instance
            for f in wanted:
                renamed = Atom(instance.relation, f.args)
                if renamed in confidences:
                    confidences.setdefault(f, confidences[renamed])
                    continue
                if f in confidences:
                    continue
                # Anonymous or out-of-space fact: one (memoized) extra task.
                confidences[f] = engine.confidence(f)
        return confidences

    def _answer_queries(
        self, snapshot: RegistrySnapshot, live, span
    ) -> Dict[int, Tuple[Atom, ...]]:
        """Certain-answer lower bounds for the batch's query requests.

        The snapshot's confidence-1 facts form a database contained in every
        possible world, so by monotonicity any conjunctive answer over it is
        certain (cf. ``repro.confidence.answers.certain_answer_lower_bound``).
        The query runs through the compiled-plan pipeline; the certain
        database is cached per snapshot version, so batch-mates and repeat
        queries share its scan rows and join indexes. With ``config.shards
        > 1`` execution scatter-gathers over the version's sharded store.

        Answers are rendered in the canonical total order
        (:func:`repro.shard.merge.canonical_order`) — ``key=str`` is not
        total over heterogeneous constants, so equal answer sets could
        serialize differently across runs.
        """
        queried = [
            request for request, _snapshot, _future in live
            if request.query is not None
        ]
        out: Dict[int, Tuple[Atom, ...]] = {}
        if not queried:
            return out
        from repro.plan import evaluate as plan_evaluate, optimizer_stats
        from repro.shard import canonical_order, shard_stats

        sharded = self.config.shards > 1
        executor = self._shard_executor(snapshot) if sharded else None
        database = None if sharded else self._certain_database(snapshot)
        with span.child(
            "query_answers", version=snapshot.version, queries=len(queried)
        ):
            self.metrics.counter("query_requests").inc(len(queried))
            before = optimizer_stats()
            shard_before = shard_stats() if sharded else {}
            for request in queried:
                if executor is not None:
                    out[request.request_id] = executor.answer_ordered(
                        request.query
                    )
                else:
                    out[request.request_id] = canonical_order(
                        plan_evaluate(request.query, database)
                    )
            self._record_optimizer_metrics(before, optimizer_stats())
            if sharded:
                self._record_shard_metrics(shard_before, shard_stats())
        return out

    def _record_shard_metrics(self, before: Dict, after: Dict) -> None:
        """Fold this batch's shard-execution deltas into the metrics."""
        for name in (
            "queries",
            "fragments_executed",
            "shards_pruned",
            "worker_misses",
        ):
            delta = (after.get(name) or 0) - (before.get(name) or 0)
            if delta:
                self.metrics.counter(f"shard_{name}").inc(delta)

    def _record_optimizer_metrics(self, before: Dict, after: Dict) -> None:
        """Fold this batch's optimizer activity into the metrics registry.

        The optimizer's counters are process-wide; the per-batch *delta* is
        what this service instance actually caused, so that is what lands in
        its :class:`MetricsRegistry` (``plan_misestimates``,
        ``plan_reoptimizations``, ...).
        """
        for name in (
            "plans_optimized",
            "feedback_checks",
            "misestimates",
            "reoptimizations",
        ):
            delta = (after.get(name) or 0) - (before.get(name) or 0)
            if delta:
                self.metrics.counter(f"plan_{name}").inc(delta)
        max_q = after.get("max_q_error")
        if max_q and max_q != before.get("max_q_error"):
            self.metrics.histogram("plan_q_error").observe(max_q)

    def _certain_database(self, snapshot: RegistrySnapshot) -> GlobalDatabase:
        """The snapshot's confidence-1 facts as one database (cached)."""
        database = self._certain_dbs.get(snapshot.version)
        if database is None:
            engine = self._engine_for(snapshot)
            database = GlobalDatabase(
                f for f, confidence in engine.confidences().items()
                if confidence == 1
            )
            self._certain_dbs[snapshot.version] = database
            while len(self._certain_dbs) > 8:
                oldest = min(self._certain_dbs)
                if oldest == snapshot.version:
                    break
                self._certain_dbs.pop(oldest)
        return database

    def _shard_executor(self, snapshot: RegistrySnapshot):
        """The snapshot's scatter-gather executor (per-version cache).

        The sharded store partitions the same certain database the
        single-store path queries, under a spec built from the config's
        shard count; fragments and their plan-layer caches are shared by
        every batch pinned to this version.
        """
        from repro.shard import PartitionSpec, ShardedDatabase, ShardExecutor

        executor = self._shard_executors.get(snapshot.version)
        if executor is None:
            store = ShardedDatabase(
                self._certain_database(snapshot),
                PartitionSpec(self.config.shards),
            )
            executor = ShardExecutor(
                store, workers=self.config.shard_workers
            )
            self._shard_executors[snapshot.version] = executor
            while len(self._shard_executors) > 8:
                oldest = min(self._shard_executors)
                if oldest == snapshot.version:
                    break
                self._shard_executors.pop(oldest).close()
        return executor

    def retire_version_tags(self, before_version: int) -> set:
        """Pop per-version stores pre-dating *before_version*; return tags.

        Certain databases and shard executors of superseded versions will
        never serve another request, so their per-version slots are freed
        here — but the *derived artifacts* they seeded (statistics, data
        sources, partition layouts, fragment tokens) live in the enrolled
        caches, keyed or tagged by fact set. The returned tag set — each
        retired certain core plus every fragment a retired sharded store
        materialized — is what the invalidation bus needs to clear all of
        them in one :meth:`~repro.cache.CacheRegistry.invalidate_tags`
        call. Retired sharded stores are counted under
        ``shard_stores_discarded``.
        """
        tags: set = set()
        for version in [v for v in self._certain_dbs if v < before_version]:
            database = self._certain_dbs.pop(version)
            tags.add(database.core())
        retired = 0
        for version in [
            v for v in self._shard_executors if v < before_version
        ]:
            executor = self._shard_executors.pop(version)
            tags.update(executor.sharded.built_fragments())
            executor.close()
            retired += 1
        if retired:
            self.metrics.counter("shard_stores_discarded").inc(retired)
        return tags

    def discard_plan_statistics(self, before_version: int) -> int:
        """Retire superseded versions' derived entries through the bus.

        The pre-bus entry point, kept for callers that retire versions
        outside a registry mutation (the sharded-service tests drive it
        directly): collects this scheduler's retirement tags and pushes
        them through the process cache registry. Returns how many
        statistics-catalog entries the bus dropped. Entries are
        content-addressed, so all of this is hygiene, never correctness.
        """
        from repro.cache import cache_registry

        per_cache = cache_registry().invalidate_tags(
            self.retire_version_tags(before_version)
        )
        return per_cache.get("plan.statistics", 0)

    def _engine_for(self, snapshot: RegistrySnapshot) -> ConfidenceEngine:
        engine = self._engines.get(snapshot.version)
        if engine is None:
            engine = ConfidenceEngine(
                snapshot.instance(),
                workers=self.config.engine_workers,
                memo=self.memo,
                cache_size=self.config.engine_cache_size,
            )
            self._engines[snapshot.version] = engine
            while len(self._engines) > 8:  # superseded versions age out
                oldest = min(self._engines)
                if oldest == snapshot.version:
                    break
                self._engines.pop(oldest).close()
        return engine

    # -- resolution --------------------------------------------------------------

    def _resolve(self, request, future, response: ServiceResponse) -> None:
        self.metrics.counter(f"responses_{response.status.value}").inc()
        self.metrics.histogram("latency").observe(response.latency)
        self.metrics.histogram(
            f"latency_{response.status.value}"
        ).observe(response.latency)
        if not future.done():
            future.set_result(response)
