"""Versioned source registry: copy-on-write snapshots + memo invalidation.

The registry is the service's only mutable state. Every mutation —
``register``, ``update``, ``deregister``, ``set_domain`` — builds a brand-new
immutable :class:`RegistrySnapshot` (collections and snapshots are never
edited in place) and atomically swaps the head pointer, so a request that
grabbed version *v* at admission keeps computing against *v* no matter what
lands meanwhile. That is the snapshot-isolation guarantee the acceptance
test exercises by registering a source mid-flight.

Each mutation also yields a :class:`RegistryDiff` naming exactly which
signature blocks of the *old* snapshot the change touched: blocks whose
membership signature involves a changed source, or whose fact set gained or
lost members. The engine's memo is content-addressed (a canonical key *is*
the counting problem, so an entry can never become wrong), but entries whose
block shape the change retired can never be hit again by this lineage;
:func:`invalidate` recomputes precisely those keys from the old spec and
discards them, keeping the shared LRU from silting up with dead blocks under
a long-running churn of registrations. Untouched entries stay — alpha
equivalence means a re-registration under a new name, a permutation of
sources, or a renamed domain still hits them.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.confidence.blocks import IdentityInstance
from repro.confidence.engine import kernel
from repro.confidence.engine.memo import LRUMemo, canonical_key

#: How many superseded snapshots the registry keeps reachable (for the
#: fault injector's staleness mode and for debugging version skew).
DEFAULT_HISTORY = 8


class RegistrySnapshot:
    """One immutable registry version: a collection, a domain, a spec.

    The block decomposition (:class:`IdentityInstance` + ``CountingSpec``) is
    built lazily on first use and cached — snapshots are cheap to mint and
    only pay for analysis when a request actually computes against them.
    """

    __slots__ = ("version", "collection", "domain", "_lock", "_instance", "_spec")

    def __init__(
        self, version: int, collection: SourceCollection, domain: Sequence
    ):
        self.version = version
        self.collection = collection
        self.domain: Tuple = tuple(domain)
        self._lock = threading.Lock()
        self._instance: Optional[IdentityInstance] = None
        self._spec: Optional[kernel.CountingSpec] = None

    def instance(self) -> IdentityInstance:
        """The snapshot's block decomposition (cached, thread-safe)."""
        with self._lock:
            if self._instance is None:
                self._instance = IdentityInstance(self.collection, self.domain)
            return self._instance

    def spec(self) -> kernel.CountingSpec:
        with self._lock:
            if self._spec is None:
                if self._instance is None:
                    self._instance = IdentityInstance(
                        self.collection, self.domain
                    )
                self._spec = kernel.spec_of(self._instance)
            return self._spec

    def covered_facts(self) -> List[Atom]:
        """All facts claimed by at least one source (global form)."""
        instance = self.instance()
        return [f for block in instance.blocks for f in block.facts]

    def __repr__(self) -> str:
        return (
            f"RegistrySnapshot(v{self.version}, "
            f"{len(self.collection)} sources, |dom|={len(self.domain)})"
        )


class RegistryDiff:
    """What one registry mutation changed, in block terms.

    ``touched_blocks`` indexes blocks of the *old* snapshot whose counting
    problems the change retired; ``full`` marks mutations (domain changes,
    first registration) that touch everything.
    """

    __slots__ = ("old_version", "new_version", "changed_sources",
                 "touched_blocks", "full")

    def __init__(
        self,
        old_version: int,
        new_version: int,
        changed_sources: FrozenSet[str],
        touched_blocks: Tuple[int, ...],
        full: bool = False,
    ):
        self.old_version = old_version
        self.new_version = new_version
        self.changed_sources = changed_sources
        self.touched_blocks = touched_blocks
        self.full = full

    def __repr__(self) -> str:
        scope = "full" if self.full else f"blocks={list(self.touched_blocks)}"
        return (
            f"RegistryDiff(v{self.old_version}->v{self.new_version}, "
            f"sources={sorted(self.changed_sources)}, {scope})"
        )


def diff_snapshots(
    old: RegistrySnapshot,
    new: RegistrySnapshot,
    changed_sources: FrozenSet[str],
) -> RegistryDiff:
    """Compute which old-snapshot blocks a mutation touched.

    A block is touched when its signature contains a changed source or when
    its fact membership differs between the snapshots' decompositions. A
    domain change (or an old snapshot with no decomposable collection)
    degrades to a full diff.
    """
    if old.domain != new.domain or not len(old.collection):
        return RegistryDiff(
            old.version, new.version, changed_sources, (), full=True
        )
    old_instance = old.instance()
    changed_indices = {
        i for i, name in enumerate(old_instance.names) if name in changed_sources
    }
    new_signature_of: Dict[Atom, FrozenSet[str]] = {}
    if len(new.collection):
        new_instance = new.instance()
        for block in new_instance.blocks:
            names = frozenset(
                new_instance.names[i] for i in block.signature
            )
            for f in block.facts:
                new_signature_of[f] = names
    touched: List[int] = []
    for j, block in enumerate(old_instance.blocks):
        names = frozenset(old_instance.names[i] for i in block.signature)
        if block.signature & frozenset(changed_indices):
            touched.append(j)
            continue
        if any(new_signature_of.get(f) != names for f in block.facts):
            touched.append(j)
    return RegistryDiff(
        old.version, new.version, changed_sources, tuple(touched)
    )


def invalidation_tags(
    old: RegistrySnapshot, diff: RegistryDiff
) -> FrozenSet:
    """The canonical memo keys one mutation retired, as bus tags.

    Recomputes, from the old spec, the canonical keys the engine would have
    planned for the denominator and for each touched block's numerator.
    Pushed through :meth:`repro.cache.CacheRegistry.invalidate_tags`, they
    reach the (content-addressed) engine memo by key match — the memo needs
    no stored tags for the bus to retire exactly these entries. An old
    snapshot that was never identity-decomposable keyed nothing.
    """
    if not len(old.collection):
        return frozenset()
    try:
        spec = old.spec()
    except SourceError:
        return frozenset()  # not identity-decomposable; nothing keyed
    blocks = (
        range(spec.n_blocks) if diff.full else diff.touched_blocks
    )
    problems = [kernel.reduce_spec(spec)]
    problems += [kernel.reduce_spec(spec, forced={j: 1}) for j in blocks]
    return frozenset(
        canonical_key(problem) for problem in problems if problem is not None
    )


def invalidate(
    memo: LRUMemo, old: RegistrySnapshot, diff: RegistryDiff
) -> int:
    """Discard the old snapshot's memo entries for touched blocks.

    The direct (single-memo) form of the invalidation bus, used for memos
    that are not enrolled in the process registry — e.g. a private memo a
    test or caller handed to the service. Returns how many entries were
    actually removed (entries never computed, or already evicted, count
    zero).
    """
    removed = 0
    for key in invalidation_tags(old, diff):
        if memo.discard(key):
            removed += 1
    return removed


class SourceRegistry:
    """Thread-safe, versioned registry of source descriptors.

    All mutations return the new :class:`RegistrySnapshot` and the
    :class:`RegistryDiff` against the previous head. Readers call
    :meth:`snapshot` once and hold the result; the head swap is atomic under
    the registry lock, and snapshots are immutable, so readers never observe
    a half-applied mutation.
    """

    def __init__(
        self,
        sources: Iterable[SourceDescriptor] = (),
        domain: Sequence = (),
        history: int = DEFAULT_HISTORY,
    ):
        self._lock = threading.Lock()
        self._head = RegistrySnapshot(0, SourceCollection(sources), domain)
        self._history: Dict[int, RegistrySnapshot] = {0: self._head}
        self._history_limit = max(1, history)

    # -- reads ------------------------------------------------------------------

    def snapshot(self) -> RegistrySnapshot:
        """The current head (grab once per request; it never mutates)."""
        with self._lock:
            return self._head

    def version(self) -> int:
        with self._lock:
            return self._head.version

    def past_snapshot(self, version: int) -> Optional[RegistrySnapshot]:
        """A retained superseded snapshot, if still in the history window."""
        with self._lock:
            return self._history.get(version)

    def history_versions(self) -> List[int]:
        with self._lock:
            return sorted(self._history)

    # -- mutations --------------------------------------------------------------

    def _swap(
        self, collection: SourceCollection, domain: Sequence,
        changed: FrozenSet[str],
    ) -> Tuple[RegistrySnapshot, RegistryDiff]:
        old = self._head
        new = RegistrySnapshot(old.version + 1, collection, domain)

        # Diffing decomposes both snapshots, interning the new collection's
        # constants and facts into the process-wide symbol table. If the
        # mutation aborts (e.g. an extension fact outside the domain), those
        # IDs would leak — interned by a version that never became head. The
        # exclusive interning lock blocks other threads' interning across the
        # mutate-or-rollback window, making snapshot truncation sound.
        from repro.core.symbols import global_table

        table = global_table()
        with table.exclusive():
            symbols = table.snapshot()
            had_old_instance = old._instance is not None
            try:
                diff = diff_snapshots(old, new, changed)
            except BaseException:
                if not had_old_instance:
                    # The old decomposition was first built during the failed
                    # diff; drop it so nothing retains rolled-back interning.
                    with old._lock:
                        old._instance = None
                        old._spec = None
                table.rollback(symbols)
                raise
        self._head = new
        self._history[new.version] = new
        while len(self._history) > self._history_limit:
            del self._history[min(self._history)]
        return new, diff

    def register(
        self, source: SourceDescriptor
    ) -> Tuple[RegistrySnapshot, RegistryDiff]:
        """Add a new source (names must stay unique)."""
        with self._lock:
            old = self._head
            if any(s.name == source.name for s in old.collection):
                raise SourceError(f"source {source.name!r} already registered")
            return self._swap(
                old.collection.extended(source),
                old.domain,
                frozenset([source.name]),
            )

    def update(
        self, source: SourceDescriptor
    ) -> Tuple[RegistrySnapshot, RegistryDiff]:
        """Replace the registered source of the same name."""
        with self._lock:
            old = self._head
            if not any(s.name == source.name for s in old.collection):
                raise SourceError(f"no source named {source.name!r}")
            replaced = [
                source if s.name == source.name else s for s in old.collection
            ]
            return self._swap(
                SourceCollection(replaced), old.domain,
                frozenset([source.name]),
            )

    def deregister(self, name: str) -> Tuple[RegistrySnapshot, RegistryDiff]:
        """Remove a source by name."""
        with self._lock:
            old = self._head
            remaining = [s for s in old.collection if s.name != name]
            if len(remaining) == len(old.collection):
                raise SourceError(f"no source named {name!r}")
            return self._swap(
                SourceCollection(remaining), old.domain, frozenset([name])
            )

    def set_domain(
        self, domain: Sequence
    ) -> Tuple[RegistrySnapshot, RegistryDiff]:
        """Replace the finite domain (touches every block)."""
        with self._lock:
            old = self._head
            names = frozenset(s.name for s in old.collection)
            return self._swap(old.collection, domain, names)
