"""Request/response vocabulary of the mediator service.

A request names the facts whose confidences are wanted and carries an
absolute deadline; the response always reports an explicit
:class:`RequestStatus` — the service never answers with a silently wrong or
partial confidence map. ``OK`` responses carry exact Fractions computed
against one registry snapshot, identified by ``snapshot_version`` so callers
can detect (injected or real) staleness.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.model.atoms import Atom
from repro.queries.conjunctive import ConjunctiveQuery

_request_ids = itertools.count(1)


class RequestStatus(enum.Enum):
    """Terminal status of a service request (always explicit)."""

    OK = "ok"                  #: exact confidences computed before the deadline
    TIMEOUT = "timeout"        #: deadline expired; no confidences returned
    REJECTED = "rejected"      #: refused at admission (queue full, bad input)
    ERROR = "error"            #: source reads or the engine failed after retries

    @property
    def is_terminal_failure(self) -> bool:
        return self is not RequestStatus.OK


@dataclass
class ConfidenceRequest:
    """One confidence question: a tuple of facts against one snapshot.

    ``snapshot_version`` is pinned at admission: however long the request
    waits in the queue, and whatever registrations land meanwhile, it is
    answered against the registry state it was admitted under (snapshot
    isolation — tested by registering a source mid-flight).
    """

    facts: Tuple[Atom, ...]
    deadline: Optional[float] = None       #: absolute loop time; None = none
    snapshot_version: int = -1
    request_id: int = field(default_factory=lambda: next(_request_ids))
    submitted_at: float = 0.0
    #: optional conjunctive query, answered with certain-answer lower-bound
    #: semantics over the snapshot's confidence-1 facts (compiled through
    #: ``repro.plan``); a request must carry facts, a query, or both
    query: Optional[ConjunctiveQuery] = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


@dataclass
class ServiceResponse:
    """The service's answer to one request.

    ``confidences`` is populated only for ``OK``; every other status carries
    a human-readable ``reason`` instead. ``batch_size`` records how many
    requests shared the engine call that produced this answer (1 = dispatched
    alone), ``attempts`` how many source-read tries the batch needed.
    """

    request_id: int
    status: RequestStatus
    confidences: Dict[Atom, Fraction] = field(default_factory=dict)
    reason: str = ""
    snapshot_version: int = -1
    latency: float = 0.0
    batch_size: int = 0
    attempts: int = 0
    #: certain-answer lower bound of the request's query (empty when the
    #: request carried no query); under degradation these are the answers
    #: the *remaining* sources still entail — sound either way
    answers: Tuple[Atom, ...] = ()
    #: True when one or more sources were unavailable and the answer was
    #: computed with their annotations demoted (see repro.resilience)
    degraded: bool = False
    #: names of the sources excluded (breaker open / probe failed)
    excluded_sources: Tuple[str, ...] = ()
    #: the answer set's guarantee level: "certain" normally, "degraded"
    #: when excluded sources were demoted (answers remain certain w.r.t.
    #: the sources still standing)
    guarantee: str = "certain"
    #: answers certain under the full annotation set that the demotion
    #: downgraded to merely possible (empty when not degraded)
    downgraded_answers: Tuple[Atom, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (confidences as floats keyed by str).

        ``answers`` render in the canonical total order
        (:func:`repro.shard.merge.canonical_order`): equal answer sets
        always serialize identically, whatever shard layout or set
        iteration order produced them.
        """
        from repro.shard.merge import canonical_order

        out = {
            "request_id": self.request_id,
            "status": self.status.value,
            "confidences": {
                str(f): float(c) for f, c in sorted(
                    self.confidences.items(), key=lambda kv: str(kv[0])
                )
            },
            "reason": self.reason,
            "snapshot_version": self.snapshot_version,
            "latency": self.latency,
            "batch_size": self.batch_size,
            "attempts": self.attempts,
            "answers": [str(a) for a in canonical_order(self.answers)],
            "degraded": self.degraded,
            "guarantee": self.guarantee,
        }
        if self.degraded:
            out["excluded_sources"] = list(self.excluded_sources)
            out["downgraded_answers"] = [
                str(a) for a in canonical_order(self.downgraded_answers)
            ]
            out["answer_guarantees"] = dict(
                [(str(a), "certain") for a in canonical_order(self.answers)]
                + [
                    (str(a), "possible")
                    for a in canonical_order(self.downgraded_answers)
                ]
            )
        return out
