"""Trust and blame scores for sources (the §6 consensus notion).

Given the conflict structure of a collection:

* **trust(S)** — the fraction of maximal consistent sub-collections that
  retain S. A source compatible with every way of making the collection
  consistent scores 1; a source that must always be dropped scores 0.
* **blame(S)** — the fraction of minimal conflicts that involve S,
  normalized by conflict membership. Sources appearing in many small
  conflicts are the likely bad reporters.

Both degrade gracefully: for a consistent collection every source has
trust 1 and blame 0.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional

from repro.sources.collection import SourceCollection
from repro.consensus.subcollections import (
    Oracle,
    maximal_consistent_subcollections,
    minimal_inconsistent_subcollections,
)


def trust_scores(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> Dict[str, Fraction]:
    """Per-source membership rate across maximal consistent sub-collections."""
    maximal_sets = maximal_consistent_subcollections(collection, oracle)
    names = [s.name for s in collection.sources]
    if not maximal_sets:
        return {name: Fraction(0) for name in names}
    return {
        name: Fraction(
            sum(1 for m in maximal_sets if name in m), len(maximal_sets)
        )
        for name in names
    }


def consensus_trust_scores(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> Dict[str, Fraction]:
    """Membership rate across *maximum-cardinality* MCSs only.

    The majority-consensus reading of §6: the most believable worlds are the
    ones compatible with the largest coalition of providers, so a source
    outside every largest coalition scores 0 even if it forms a small
    self-consistent island. For the classic two-against-one conflict this
    yields 1/1/0 where the unweighted :func:`trust_scores` gives 1/2 each.
    """
    maximal_sets = maximal_consistent_subcollections(collection, oracle)
    names = [s.name for s in collection.sources]
    if not maximal_sets:
        return {name: Fraction(0) for name in names}
    best = max(len(m) for m in maximal_sets)
    largest = [m for m in maximal_sets if len(m) == best]
    return {
        name: Fraction(sum(1 for m in largest if name in m), len(largest))
        for name in names
    }


def blame_scores(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> Dict[str, Fraction]:
    """Per-source participation rate across minimal conflicts."""
    conflicts = minimal_inconsistent_subcollections(collection, oracle)
    names = [s.name for s in collection.sources]
    if not conflicts:
        return {name: Fraction(0) for name in names}
    return {
        name: Fraction(
            sum(1 for c in conflicts if name in c), len(conflicts)
        )
        for name in names
    }


def rank_by_trust(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> List[str]:
    """Most to least trustworthy (consensus trust desc, blame asc)."""
    consensus = consensus_trust_scores(collection, oracle)
    trust = trust_scores(collection, oracle)
    blame = blame_scores(collection, oracle)
    return sorted(
        trust,
        key=lambda name: (-consensus[name], -trust[name], blame[name], name),
    )


def suspect_sources(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> List[str]:
    """Sources with below-1 trust, most suspicious first.

    Empty for a consistent collection — nobody needs to be doubted.
    """
    trust = trust_scores(collection, oracle)
    suspects = [name for name, score in trust.items() if score < 1]
    blame = blame_scores(collection, oracle)
    return sorted(suspects, key=lambda name: (trust[name], -blame[name], name))
