"""Bound relaxation: the gentlest correction restoring consistency.

Dropping sources (repairs) is drastic; often the right diagnosis is that
providers *over-promised*. Relaxation finds the smallest uniform discount
λ ∈ [0, 1] such that scaling every declared bound by (1 − λ) makes the
collection consistent — or, per source, the discount needed on one
provider's claims alone. Both are monotone in λ (lower bounds only get
looser), so binary search against the exact consistency oracle converges to
any requested precision.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Optional, Tuple

from repro.sources.collection import SourceCollection
from repro.sources.descriptor import SourceDescriptor
from repro.consistency.checker import check_consistency
from repro.consensus.subcollections import Oracle, _default_oracle


def scaled_collection(
    collection: SourceCollection,
    factor: Fraction,
    only: Optional[Iterable[str]] = None,
) -> SourceCollection:
    """Bounds multiplied by *factor* (for all sources, or only the named ones)."""
    targets = set(only) if only is not None else None
    scaled = []
    for source in collection:
        if targets is None or source.name in targets:
            scaled.append(
                source.with_bounds(
                    completeness_bound=source.completeness_bound * factor,
                    soundness_bound=source.soundness_bound * factor,
                )
            )
        else:
            scaled.append(source)
    return SourceCollection(scaled)


def uniform_relaxation(
    collection: SourceCollection,
    precision: Fraction = Fraction(1, 128),
    oracle: Optional[Oracle] = None,
) -> Tuple[Fraction, SourceCollection]:
    """The smallest uniform discount λ restoring consistency (within *precision*).

    Returns ``(λ, relaxed_collection)``; λ = 0 when already consistent. The
    returned λ is an upper bound at most *precision* above the true infimum,
    and the returned collection is guaranteed consistent.
    """
    oracle = oracle if oracle is not None else _default_oracle
    if oracle(collection):
        return Fraction(0), collection
    low, high = Fraction(0), Fraction(1)  # scaling by 0 is always consistent
    while high - low > precision:
        mid = (low + high) / 2
        if oracle(scaled_collection(collection, Fraction(1) - mid)):
            high = mid
        else:
            low = mid
    return high, scaled_collection(collection, Fraction(1) - high)


def per_source_relaxation(
    collection: SourceCollection,
    source_name: str,
    precision: Fraction = Fraction(1, 128),
    oracle: Optional[Oracle] = None,
) -> Optional[Fraction]:
    """The discount needed on *one* source's bounds alone, or ``None``.

    ``None`` means even completely discounting this provider (λ = 1, i.e.
    dropping its claims while keeping its data) cannot restore consistency —
    the conflict does not hinge on this source.
    """
    oracle = oracle if oracle is not None else _default_oracle
    if oracle(collection):
        return Fraction(0)
    if not oracle(scaled_collection(collection, Fraction(0), only=[source_name])):
        return None
    low, high = Fraction(0), Fraction(1)
    while high - low > precision:
        mid = (low + high) / 2
        relaxed = scaled_collection(
            collection, Fraction(1) - mid, only=[source_name]
        )
        if oracle(relaxed):
            high = mid
        else:
            low = mid
    return high


def most_fixable_source(
    collection: SourceCollection,
    precision: Fraction = Fraction(1, 128),
    oracle: Optional[Oracle] = None,
) -> Optional[Tuple[str, Fraction]]:
    """The single source whose smallest solo discount restores consistency.

    Returns ``(name, λ)`` for the cheapest fix, or ``None`` when no single
    source can absorb the conflict. The cheapest-to-fix source is a natural
    "likely culprit" under the assumption that exactly one provider
    mis-reported.
    """
    oracle = oracle if oracle is not None else _default_oracle
    if oracle(collection):
        return None  # nothing to fix
    best: Optional[Tuple[str, Fraction]] = None
    for source in collection:
        discount = per_source_relaxation(
            collection, source.name, precision, oracle
        )
        if discount is None:
            continue
        if best is None or discount < best[1]:
            best = (source.name, discount)
    return best
