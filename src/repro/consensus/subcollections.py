"""Maximal consistent and minimal inconsistent sub-collections.

The paper's discussion (§6) proposes exploring "how a notion of consensus
can be defined and used to detect the most trustworthy sources" when some
providers report wrong estimates. The classical tooling for that is
conflict analysis:

* consistency is **anti-monotone** in the source set — dropping a source
  only relaxes the constraints on poss(S), so every subset of a consistent
  collection is consistent;
* the interesting structure is therefore the antichain of **maximal
  consistent sub-collections** (MCSs) and its dual, the **minimal
  inconsistent sub-collections** (conflicts / MISes);
* a **minimal repair** is a smallest set of sources whose removal restores
  consistency — the complement of a largest MCS, equivalently a minimum
  hitting set of the conflicts (connecting back to Theorem 3.2's reduction
  machinery, now used in the opposite direction).

All searches use the exact consistency oracle and are exponential in the
number of sources — appropriate for the tens-of-sources regime the paper's
scenarios describe.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.sources.collection import SourceCollection
from repro.consistency.checker import check_consistency

Oracle = Callable[[SourceCollection], bool]
Names = FrozenSet[str]


def _default_oracle(collection: SourceCollection) -> bool:
    return check_consistency(collection).consistent


def subcollection(collection: SourceCollection, names: Names) -> SourceCollection:
    """The sub-collection holding exactly the named sources (order kept)."""
    return SourceCollection([s for s in collection if s.name in names])


def is_consistent_subset(
    collection: SourceCollection, names: Names, oracle: Optional[Oracle] = None
) -> bool:
    """Consistency of the named sub-collection (empty set is consistent)."""
    oracle = oracle if oracle is not None else _default_oracle
    return oracle(subcollection(collection, names))


def maximal_consistent_subcollections(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> List[Names]:
    """All maximal consistent source subsets, largest first.

    Enumerates subsets by decreasing size, keeping those consistent and not
    covered by an already-found maximal set. Anti-monotonicity makes this
    exact. A consistent collection yields exactly one MCS: everything.
    """
    oracle = oracle if oracle is not None else _default_oracle
    all_names = [s.name for s in collection.sources]
    found: List[Names] = []
    for size in range(len(all_names), -1, -1):
        for combo in combinations(all_names, size):
            candidate = frozenset(combo)
            if any(candidate <= maximal for maximal in found):
                continue
            if is_consistent_subset(collection, candidate, oracle):
                found.append(candidate)
    return sorted(found, key=lambda s: (-len(s), sorted(s)))


def minimal_inconsistent_subcollections(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> List[Names]:
    """All minimal inconsistent source subsets (the conflicts), smallest first.

    Empty when the collection is consistent. Each conflict is a set of
    providers whose claims are *jointly* impossible although every proper
    subset is satisfiable — the unit of blame for trust analysis.
    """
    oracle = oracle if oracle is not None else _default_oracle
    all_names = [s.name for s in collection.sources]
    conflicts: List[Names] = []
    for size in range(1, len(all_names) + 1):
        for combo in combinations(all_names, size):
            candidate = frozenset(combo)
            if any(conflict <= candidate for conflict in conflicts):
                continue
            if not is_consistent_subset(collection, candidate, oracle):
                conflicts.append(candidate)
    return sorted(conflicts, key=lambda s: (len(s), sorted(s)))


def minimal_repairs(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> List[Names]:
    """Smallest source sets whose removal restores consistency.

    Computed as complements of the largest MCSs; for a consistent collection
    the only repair is the empty set.
    """
    maximal_sets = maximal_consistent_subcollections(collection, oracle)
    if not maximal_sets:
        return []
    all_names = frozenset(s.name for s in collection.sources)
    best_size = max(len(m) for m in maximal_sets)
    return sorted(
        (all_names - m for m in maximal_sets if len(m) == best_size),
        key=sorted,
    )


def repair_via_hitting_set(
    collection: SourceCollection, oracle: Optional[Oracle] = None
) -> Tuple[Names, List[Names]]:
    """A minimum repair computed as a hitting set of the conflicts.

    Returns ``(repair, conflicts)``. Every conflict must lose at least one
    member, so minimum repairs are exactly minimum hitting sets of the
    conflict family — the same combinatorial core Theorem 3.2 reduces *from*.
    A consistent collection returns the empty repair.
    """
    from repro.reductions.hitting_set import minimum_hitting_set

    conflicts = minimal_inconsistent_subcollections(collection, oracle)
    if not conflicts:
        return frozenset(), []
    repair = frozenset(minimum_hitting_set(conflicts))
    return repair, conflicts
