"""Consensus & trust (the paper's §6 future-work direction, made concrete).

Conflict analysis over source collections: maximal consistent
sub-collections, minimal conflicts, repairs, trust/blame scores, and bound
relaxation.
"""

from repro.consensus.relaxation import (
    most_fixable_source,
    per_source_relaxation,
    scaled_collection,
    uniform_relaxation,
)
from repro.consensus.subcollections import (
    is_consistent_subset,
    maximal_consistent_subcollections,
    minimal_inconsistent_subcollections,
    minimal_repairs,
    repair_via_hitting_set,
    subcollection,
)
from repro.consensus.trust import (
    blame_scores,
    consensus_trust_scores,
    rank_by_trust,
    suspect_sources,
    trust_scores,
)

__all__ = [
    "subcollection",
    "is_consistent_subset",
    "maximal_consistent_subcollections",
    "minimal_inconsistent_subcollections",
    "minimal_repairs",
    "repair_via_hitting_set",
    "trust_scores",
    "consensus_trust_scores",
    "blame_scores",
    "rank_by_trust",
    "suspect_sources",
    "scaled_collection",
    "uniform_relaxation",
    "per_source_relaxation",
    "most_fixable_source",
]
