"""Confidence of base facts (Section 5.1).

``confidence(t) = Pr(t ∈ D | D ∈ poss(S))`` — computed exactly:

* identity-view collections: polynomial signature-block counting
  (:class:`~repro.confidence.blocks.BlockCounter`);
* arbitrary views over a small finite domain: direct possible-world
  enumeration.

Results are exact :class:`fractions.Fraction` values.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional

from repro.exceptions import InconsistentCollectionError
from repro.model.atoms import Atom
from repro.sources.collection import SourceCollection
from repro.confidence.blocks import BlockCounter, IdentityInstance
from repro.confidence.worlds import fact_space, possible_worlds


def fact_confidence(
    collection: SourceCollection, domain: Iterable, fact: Atom
) -> Fraction:
    """Exact confidence of one fact, choosing the best available method."""
    if collection.identity_relation() is not None:
        counter = BlockCounter(IdentityInstance(collection, domain))
        return counter.confidence(fact)
    return enumeration_confidences(collection, domain, [fact])[fact]


def covered_fact_confidences(
    collection: SourceCollection, domain: Iterable
) -> Dict[Atom, Fraction]:
    """Confidences of every fact claimed by at least one source.

    Identity-view collections only (the polynomial case). Facts are returned
    as *global* facts, keyed in sorted order. Anonymous facts (outside all
    extensions) all share one confidence — query it with
    :func:`anonymous_fact_confidence`.
    """
    instance = IdentityInstance(collection, domain)
    counter = BlockCounter(instance)
    denominator = counter.count_worlds()
    if denominator == 0:
        raise InconsistentCollectionError(
            "collection admits no possible database over this domain"
        )
    out: Dict[Atom, Fraction] = {}
    for block in instance.blocks:
        if not block.facts:
            continue
        # All facts of a block are interchangeable: compute once per block.
        representative = block.facts[0]
        confidence = Fraction(
            counter.count_worlds_containing(representative), denominator
        )
        for f in block.facts:
            out[f] = confidence
    return out


def anonymous_fact_confidence(
    collection: SourceCollection, domain: Iterable
) -> Optional[Fraction]:
    """The shared confidence of facts outside every extension.

    ``None`` when the domain adds no anonymous facts at all.
    """
    instance = IdentityInstance(collection, domain)
    if instance.anonymous_size == 0:
        return None
    counter = BlockCounter(instance)
    denominator = counter.count_worlds()
    if denominator == 0:
        raise InconsistentCollectionError(
            "collection admits no possible database over this domain"
        )
    # Any anonymous fact will do; build one by probing the fact space lazily.
    from itertools import product as iter_product

    covered = {f for block in instance.blocks for f in block.facts}
    for combo in iter_product(instance.domain, repeat=instance.arity):
        candidate = Atom(instance.relation, combo)
        if candidate not in covered:
            return Fraction(
                counter.count_worlds_containing(candidate), denominator
            )
    return None


def enumeration_confidences(
    collection: SourceCollection, domain: Iterable, facts: Iterable[Atom] = None
) -> Dict[Atom, Fraction]:
    """Confidences by brute-force world enumeration (any view shapes).

    *facts* defaults to the whole finite fact space. Exponential; guarded by
    the enumeration cap in :mod:`repro.confidence.worlds`.
    """
    wanted = list(facts) if facts is not None else fact_space(collection, domain)
    counts = {f: 0 for f in wanted}
    total = 0
    for world in possible_worlds(collection, domain):
        total += 1
        for f in wanted:
            if f in world:
                counts[f] += 1
    if total == 0:
        raise InconsistentCollectionError(
            "collection admits no possible database over this domain"
        )
    return {f: Fraction(c, total) for f, c in counts.items()}


def certain_facts(
    confidences: Dict[Atom, Fraction]
) -> frozenset:
    """Facts with confidence exactly 1 (in every possible world)."""
    return frozenset(f for f, c in confidences.items() if c == 1)


def plausible_facts(
    confidences: Dict[Atom, Fraction], threshold: Fraction = Fraction(0)
) -> frozenset:
    """Facts with confidence strictly above *threshold*."""
    return frozenset(f for f, c in confidences.items() if c > threshold)
