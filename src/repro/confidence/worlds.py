"""Possible-world enumeration (the set poss(S), Section 3).

Two enumeration routes:

* :func:`possible_worlds` — fully generic brute force over every subset of
  the fact space of ``sch(S)`` with constants from a given finite domain.
  Works for arbitrary view definitions; exponential, guarded by a size cap.
  This is the ground-truth oracle for everything else.
* :func:`possible_worlds_identity` — identity-view collections: enumerate
  via the Γ system (still exponential, but only over one relation's space).

Both yield :class:`~repro.model.database.GlobalDatabase` objects.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, List, Optional

from repro.exceptions import DomainTooLargeError, SourceError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.sources.collection import SourceCollection
from repro.confidence.blocks import IdentityInstance
from repro.confidence.linear_system import GammaSystem

#: Refuse generic enumeration beyond this many candidate facts (2^22 subsets).
MAX_FACT_SPACE = 22


def fact_space(collection: SourceCollection, domain: Iterable) -> List[Atom]:
    """Every fact over ``sch(S)`` with constants from *domain*, sorted."""
    schema = collection.schema()
    return sorted(schema.fact_space(domain))


def possible_worlds(
    collection: SourceCollection,
    domain: Iterable,
    max_facts: Optional[int] = None,
) -> Iterator[GlobalDatabase]:
    """Enumerate ``poss(S)`` over the finite fact space, smallest worlds first.

    *max_facts* optionally restricts enumeration to worlds of at most that
    many facts (useful with Lemma 3.1's bound when deciding consistency).
    """
    candidates = fact_space(collection, domain)
    if len(candidates) > MAX_FACT_SPACE:
        raise DomainTooLargeError(
            f"fact space has {len(candidates)} facts (> {MAX_FACT_SPACE}); "
            "use the identity-case BlockCounter or Monte-Carlo estimation"
        )
    limit = len(candidates) if max_facts is None else min(max_facts, len(candidates))
    for size in range(limit + 1):
        for combo in combinations(candidates, size):
            world = GlobalDatabase(combo)
            if collection.admits(world):
                yield world


def count_possible_worlds(
    collection: SourceCollection, domain: Iterable
) -> int:
    """``|poss(S)|`` over the finite fact space, by enumeration."""
    return sum(1 for _ in possible_worlds(collection, domain))


def is_consistent_over(collection: SourceCollection, domain: Iterable) -> bool:
    """Non-emptiness of poss(S) over the finite fact space."""
    for _ in possible_worlds(collection, domain):
        return True
    return False


def possible_worlds_identity(
    collection: SourceCollection, domain: Iterable
) -> Iterator[GlobalDatabase]:
    """Enumerate poss(S) for an identity-view collection via the Γ system."""
    if collection.identity_relation() is None:
        raise SourceError("possible_worlds_identity requires identity views")
    system = GammaSystem(IdentityInstance(collection, domain))
    yield from system.solution_databases()
