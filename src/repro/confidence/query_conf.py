"""The confidence propagation calculus conf_Q (Definition 5.1).

Structural rules over a relational-algebra tree:

* ``Q = R``                 → base-fact confidences;
* ``Q = π_Att Q'``          → ⊕ over the preimage (noisy-or);
* ``Q = σ_φ Q'``            → unchanged for surviving tuples;
* ``Q = Q' × Q''``          → product of the factors' confidences;
* ``Q = Q' ∪ Q''``          → ⊕ of the two contributions (extension).

Theorem 5.1 states conf_Q(t) = confidence_Q(t); the ⊕ and × rules treat the
contributing events as independent, which holds when the combined tuples'
memberships are independent in the possible-world distribution. Experiment
E6 measures how the calculus tracks the exact possible-world confidence when
that assumption is stressed (shared base facts, correlated sources).
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Real
from typing import Dict, Iterable, Mapping, Union

from repro.exceptions import QueryError
from repro.model.atoms import Atom
from repro.model.terms import Constant
from repro.algebra.ast import (
    AlgebraQuery,
    Product,
    Projection,
    RelationScan,
    Row,
    Selection,
    UnionNode,
)

Number = Union[Fraction, float]
BaseConfidences = Mapping[str, Mapping[Row, Number]]


def oplus(probabilities: Iterable[Number]) -> Number:
    """``⊕ p_i = 1 − ∏(1 − p_i)`` — probability of a union of independent
    events (the paper's Notation in Section 5.2)."""
    product_term: Number = 1
    for p in probabilities:
        product_term = product_term * (1 - p)
    return 1 - product_term


def base_confidences_from_facts(
    confidences: Mapping[Atom, Number]
) -> Dict[str, Dict[Row, Number]]:
    """Regroup fact→confidence into relation→row→confidence for propagation."""
    out: Dict[str, Dict[Row, Number]] = {}
    for fact, confidence in confidences.items():
        out.setdefault(fact.relation, {})[fact.args] = confidence
    return out


def propagate(
    query: AlgebraQuery, base: BaseConfidences
) -> Dict[Row, Number]:
    """conf_Q for every tuple in the (represented) possible answer.

    *base* maps each scanned relation to the confidences of its possible
    facts (e.g. from
    :func:`repro.confidence.base_facts.covered_fact_confidences`, regrouped
    by :func:`base_confidences_from_facts`). Tuples absent from *base* are
    treated as confidence 0 and never produced.
    """
    if isinstance(query, RelationScan):
        relation_confidences = base.get(query.relation, {})
        return {
            row: confidence
            for row, confidence in relation_confidences.items()
            if len(row) == query.arity and confidence != 0
        }
    if isinstance(query, Selection):
        child = propagate(query.child, base)
        return {
            row: confidence
            for row, confidence in child.items()
            if query.condition(row)
        }
    if isinstance(query, Projection):
        child = propagate(query.child, base)
        grouped: Dict[Row, list] = {}
        for row, confidence in child.items():
            image = tuple(
                row[c] if isinstance(c, int) else c for c in query.columns
            )
            grouped.setdefault(image, []).append(confidence)
        return {image: oplus(confs) for image, confs in grouped.items()}
    if isinstance(query, Product):
        left = propagate(query.left, base)
        right = propagate(query.right, base)
        return {
            l_row + r_row: l_conf * r_conf
            for l_row, l_conf in left.items()
            for r_row, r_conf in right.items()
        }
    if isinstance(query, UnionNode):
        left = propagate(query.left, base)
        right = propagate(query.right, base)
        out: Dict[Row, Number] = dict(left)
        for row, confidence in right.items():
            if row in out:
                out[row] = oplus([out[row], confidence])
            else:
                out[row] = confidence
        return out
    raise QueryError(f"no confidence rule for node {type(query).__name__}")


def propagate_facts(
    query: AlgebraQuery,
    fact_confidences: Mapping[Atom, Number],
    answer_relation: str = "ans",
) -> Dict[Atom, Number]:
    """Convenience wrapper: fact-level in, fact-level out."""
    rows = propagate(query, base_confidences_from_facts(fact_confidences))
    return {Atom(answer_relation, row): conf for row, conf in rows.items()}
