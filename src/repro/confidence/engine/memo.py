"""LRU memoization of counting problems, keyed by canonical block signatures.

Two counting questions that are *alpha-equivalent* — identical up to renaming
facts and permuting sources — have identical world counts, so they must hit
the same cache line. :func:`canonical_key` achieves this by canonicalizing a
:class:`~repro.confidence.engine.kernel.ReducedProblem`:

* fact names never enter the key (a reduced problem only carries block
  *sizes*), so fact renaming is quotiented out for free;
* source permutations are quotiented out by re-labelling sources in a
  canonical order: sources are first sorted by an invariant *profile*
  (soundness floor, completeness bound, seeded sound count, and the multiset
  of shapes of the blocks they appear in); any sources left tied by the
  profile are disambiguated by trying every permutation of the tied group
  and keeping the lexicographically least rendering. Tied groups are almost
  always singletons, so the exact search is cheap; a safety valve caps the
  number of candidate orders and falls back to the (still deterministic,
  merely less collision-happy) profile order.

The cache itself is a thread-safe LRU over these keys with hit/miss/eviction
counters, shared process-wide by default so repeated sub-blocks across
answers, queries, and engine instances are computed once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from itertools import islice, permutations, product
from typing import Dict, Hashable, List, NamedTuple, Optional, Sequence, Tuple

from repro.confidence.engine.kernel import ReducedProblem

#: Default capacity of the shared memo.
DEFAULT_CACHE_SIZE = 4096

#: Give up on exact tie-breaking beyond this many candidate source orders.
MAX_CANONICAL_ORDERS = 720


class CacheStats(NamedTuple):
    """A point-in-time snapshot of a memo's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUMemo:
    """A thread-safe least-recently-used cache with instrumentation."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize <= 0:
            raise ValueError("LRUMemo needs a positive maxsize")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> Tuple[bool, Optional[object]]:
        """``(hit, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return True, self._data[key]
            self.misses += 1
            return False, None

    def store(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def discard(self, key: Hashable) -> bool:
        """Drop one entry if present; ``True`` when something was removed.

        Discarding is *not* an eviction (the entry is not counted in
        ``evictions``): callers use it to retire entries they can prove
        unreachable, e.g. the service registry invalidating the counting
        problems of signature blocks a source update touched.
        """
        with self._lock:
            return self._data.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )


_SHARED = LRUMemo()


def shared_memo() -> LRUMemo:
    """The process-wide default memo (shared across engine instances)."""
    return _SHARED


def _profiles(problem: ReducedProblem, completeness: Sequence) -> List[Tuple]:
    """A permutation-invariant profile per source (the sorting key).

    *completeness* supplies one sortable token per source — interned int IDs
    on the fast path, raw Fractions on the boxed baseline. Any fixed total
    order over the tokens yields a correct canonicalization; only equality
    of tokens (which both encodings preserve) affects which keys collide.
    """
    block_shapes: List[List[Tuple[int, int]]] = [
        [] for _ in range(problem.n_sources)
    ]
    for signature, size in zip(problem.signatures, problem.sizes):
        shape = (size, len(signature))
        for i in signature:
            block_shapes[i].append(shape)
    return [
        (
            problem.min_sound[i],
            completeness[i],
            problem.seed_sound[i],
            tuple(sorted(block_shapes[i])),
        )
        for i in range(problem.n_sources)
    ]


def _render(
    problem: ReducedProblem, completeness: Sequence, order: Sequence[int]
) -> Tuple:
    """The key rendering under one source order (*order[new] = old*)."""
    relabel = {old: new for new, old in enumerate(order)}
    per_source = tuple(
        (
            problem.min_sound[old],
            completeness[old],
            problem.seed_sound[old],
        )
        for old in order
    )
    blocks = tuple(
        sorted(
            (tuple(sorted(relabel[i] for i in signature)), size)
            for signature, size in zip(problem.signatures, problem.sizes)
        )
    )
    return (
        per_source,
        blocks,
        problem.anonymous_size,
        problem.seed_total,
    )


def _canonicalize(problem: ReducedProblem, completeness: Sequence) -> Tuple:
    profiles = _profiles(problem, completeness)
    base_order = sorted(range(problem.n_sources), key=lambda i: profiles[i])

    # Group profile-tied sources; exact tie-break permutes within groups.
    groups: List[List[int]] = []
    for i in base_order:
        if groups and profiles[groups[-1][0]] == profiles[i]:
            groups[-1].append(i)
        else:
            groups.append([i])
    n_orders = 1
    for group in groups:
        for k in range(2, len(group) + 1):
            n_orders *= k
    if n_orders == 1:
        return _render(problem, completeness, base_order)
    candidates = product(*(permutations(group) for group in groups))
    best: Optional[Tuple] = None
    for arrangement in islice(candidates, MAX_CANONICAL_ORDERS):
        order = [i for group in arrangement for i in group]
        rendering = _render(problem, completeness, order)
        if best is None or rendering < best:
            best = rendering
    return best


def canonical_key(problem: ReducedProblem) -> Tuple:
    """A hashable key identical across alpha-equivalent counting problems.

    Every entry of the key is a plain int: completeness bounds are interned
    as constants in the process-wide symbol table (equal Fractions share an
    ID), so key comparison and hashing never touch Fraction arithmetic. The
    encoding is injective relative to :func:`canonical_key_boxed` — two
    problems get equal int keys iff they get equal boxed keys (asserted
    property-based in ``tests/property/test_core_roundtrip.py``), so hit/miss
    behavior is identical.
    """
    from repro.core.symbols import global_table

    intern_constant = global_table().constant
    completeness = tuple(intern_constant(c) for c in problem.completeness)
    return _canonicalize(problem, completeness)


def canonical_key_boxed(problem: ReducedProblem) -> Tuple:
    """The pre-interning key (Fractions compared by value), kept as the
    reference for the key-agreement property tests and the E17 benchmark.
    """
    return _canonicalize(problem, problem.completeness)
