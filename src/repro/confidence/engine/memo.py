"""LRU memoization of counting problems, keyed by canonical block signatures.

Two counting questions that are *alpha-equivalent* — identical up to renaming
facts and permuting sources — have identical world counts, so they must hit
the same cache line. :func:`canonical_key` achieves this by canonicalizing a
:class:`~repro.confidence.engine.kernel.ReducedProblem`:

* fact names never enter the key (a reduced problem only carries block
  *sizes*), so fact renaming is quotiented out for free;
* source permutations are quotiented out by re-labelling sources in a
  canonical order: sources are first sorted by an invariant *profile*
  (soundness floor, completeness bound, seeded sound count, and the multiset
  of shapes of the blocks they appear in); any sources left tied by the
  profile are disambiguated by trying every permutation of the tied group
  and keeping the lexicographically least rendering. Tied groups are almost
  always singletons, so the exact search is cheap; a safety valve caps the
  number of candidate orders and falls back to the (still deterministic,
  merely less collision-happy) profile order.

The cache itself is an :class:`~repro.cache.runtime.LRUMemo` from the
unified cache runtime (``repro.cache``): thread-safe LRU with
hit/miss/eviction counters, byte accounting, and tag invalidation. The
shared instance is enrolled in the process-wide
:class:`~repro.cache.runtime.CacheRegistry` as ``"engine.memo"``, so it
participates in the global byte budget and the invalidation bus; since
its canonical keys *are* the counting problems, the bus retires entries
by key match without any duplicate tag storage. ``CacheStats``,
``LRUMemo``, and ``DEFAULT_CACHE_SIZE`` are re-exported here for
compatibility with pre-runtime imports.
"""

from __future__ import annotations

import sys
from itertools import islice, permutations, product
from typing import List, Optional, Sequence, Tuple

from repro.cache import cache_registry
from repro.cache.runtime import DEFAULT_CACHE_SIZE, CacheStats, LRUMemo
from repro.confidence.engine.kernel import ReducedProblem

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_SIZE",
    "LRUMemo",
    "MAX_CANONICAL_ORDERS",
    "canonical_key",
    "canonical_key_boxed",
    "shared_memo",
]

#: Give up on exact tie-breaking beyond this many candidate source orders.
MAX_CANONICAL_ORDERS = 720


def _memo_sizeof(key: object, value: object) -> int:
    """Price one memo line: a nested int tuple key plus one big int.

    Canonical keys are small tuples of ints; the value is a world count
    (possibly a very large int). A flat structural estimate beats the
    generic sampler here because keys dominate and are uniform.
    """
    try:
        per_source, blocks, _, _ = key  # type: ignore[misc]
        width = len(per_source) * 3 + len(blocks) * 4
    except (TypeError, ValueError):
        width = 8
    return 120 + 48 * width + sys.getsizeof(value)


_SHARED = cache_registry().enroll(
    LRUMemo(name="engine.memo", sizeof=_memo_sizeof)
)


def shared_memo() -> LRUMemo:
    """The process-wide default memo (shared across engine instances)."""
    return _SHARED


def _profiles(problem: ReducedProblem, completeness: Sequence) -> List[Tuple]:
    """A permutation-invariant profile per source (the sorting key).

    *completeness* supplies one sortable token per source — interned int IDs
    on the fast path, raw Fractions on the boxed baseline. Any fixed total
    order over the tokens yields a correct canonicalization; only equality
    of tokens (which both encodings preserve) affects which keys collide.
    """
    block_shapes: List[List[Tuple[int, int]]] = [
        [] for _ in range(problem.n_sources)
    ]
    for signature, size in zip(problem.signatures, problem.sizes):
        shape = (size, len(signature))
        for i in signature:
            block_shapes[i].append(shape)
    return [
        (
            problem.min_sound[i],
            completeness[i],
            problem.seed_sound[i],
            tuple(sorted(block_shapes[i])),
        )
        for i in range(problem.n_sources)
    ]


def _render(
    problem: ReducedProblem, completeness: Sequence, order: Sequence[int]
) -> Tuple:
    """The key rendering under one source order (*order[new] = old*)."""
    relabel = {old: new for new, old in enumerate(order)}
    per_source = tuple(
        (
            problem.min_sound[old],
            completeness[old],
            problem.seed_sound[old],
        )
        for old in order
    )
    blocks = tuple(
        sorted(
            (tuple(sorted(relabel[i] for i in signature)), size)
            for signature, size in zip(problem.signatures, problem.sizes)
        )
    )
    return (
        per_source,
        blocks,
        problem.anonymous_size,
        problem.seed_total,
    )


def _canonicalize(problem: ReducedProblem, completeness: Sequence) -> Tuple:
    profiles = _profiles(problem, completeness)
    base_order = sorted(range(problem.n_sources), key=lambda i: profiles[i])

    # Group profile-tied sources; exact tie-break permutes within groups.
    groups: List[List[int]] = []
    for i in base_order:
        if groups and profiles[groups[-1][0]] == profiles[i]:
            groups[-1].append(i)
        else:
            groups.append([i])
    n_orders = 1
    for group in groups:
        for k in range(2, len(group) + 1):
            n_orders *= k
    if n_orders == 1:
        return _render(problem, completeness, base_order)
    candidates = product(*(permutations(group) for group in groups))
    best: Optional[Tuple] = None
    for arrangement in islice(candidates, MAX_CANONICAL_ORDERS):
        order = [i for group in arrangement for i in group]
        rendering = _render(problem, completeness, order)
        if best is None or rendering < best:
            best = rendering
    return best


def canonical_key(problem: ReducedProblem) -> Tuple:
    """A hashable key identical across alpha-equivalent counting problems.

    Every entry of the key is a plain int: completeness bounds are interned
    as constants in the process-wide symbol table (equal Fractions share an
    ID), so key comparison and hashing never touch Fraction arithmetic. The
    encoding is injective relative to :func:`canonical_key_boxed` — two
    problems get equal int keys iff they get equal boxed keys (asserted
    property-based in ``tests/property/test_core_roundtrip.py``), so hit/miss
    behavior is identical.
    """
    from repro.core.symbols import global_table

    intern_constant = global_table().constant
    completeness = tuple(intern_constant(c) for c in problem.completeness)
    return _canonicalize(problem, completeness)


def canonical_key_boxed(problem: ReducedProblem) -> Tuple:
    """The pre-interning key (Fractions compared by value), kept as the
    reference for the key-agreement property tests and the E17 benchmark.
    """
    return _canonicalize(problem, problem.completeness)
