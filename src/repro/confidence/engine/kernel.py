"""The pure counting kernel: signature-block DP over plain data.

The engine's unit of work. A :class:`CountingSpec` is the block decomposition
of an :class:`~repro.confidence.blocks.IdentityInstance` stripped down to the
numbers the dynamic program actually consumes — block sizes, membership
signatures, per-source soundness floors and completeness bounds, and the
anonymous-block size. No model objects (atoms, views, collections) survive
into the spec, which buys three properties at once:

* **parallelism** — specs are tiny, picklable tuples, cheap to ship to
  worker processes;
* **memoization** — every counting question reduces (via :func:`reduce_spec`)
  to a canonical :class:`ReducedProblem`, the natural cache key domain;
* **single implementation** — :class:`~repro.confidence.blocks.BlockCounter`
  delegates here, so the serial API and the parallel engine run literally
  the same DP.

A *reduced problem* folds forced-in facts (numerator counts "worlds
containing t": shrink t's block, seed the sound counts) and forced-out facts
(complement counts: shrink the block, no seed) into the spec itself, so
distinct questions that induce the same arithmetic collide in the cache.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Mapping, NamedTuple, Optional, Sequence, Tuple

State = Tuple[Tuple[int, ...], int]
StateMap = Dict[State, int]


class CountingSpec(NamedTuple):
    """The block decomposition of an identity instance, as plain data."""

    signatures: Tuple[Tuple[int, ...], ...]  #: per block: sorted source indices
    sizes: Tuple[int, ...]                   #: per block: number of facts
    min_sound: Tuple[int, ...]               #: per source: ⌈s_i·k_i⌉ floor
    completeness: Tuple[Fraction, ...]       #: per source: bound c_i
    anonymous_size: int                      #: facts outside every extension

    @property
    def n_sources(self) -> int:
        return len(self.min_sound)

    @property
    def n_blocks(self) -> int:
        return len(self.sizes)


class ReducedProblem(NamedTuple):
    """A counting question folded into spec form (see module docstring)."""

    signatures: Tuple[Tuple[int, ...], ...]
    sizes: Tuple[int, ...]                   #: effective (shrunk) block sizes
    min_sound: Tuple[int, ...]
    completeness: Tuple[Fraction, ...]
    anonymous_size: int                      #: effective anonymous size
    seed_sound: Tuple[int, ...]              #: sound counts of forced-in facts
    seed_total: int                          #: |forced-in facts|

    @property
    def n_sources(self) -> int:
        return len(self.min_sound)


def spec_of(instance) -> CountingSpec:
    """Extract the :class:`CountingSpec` of an ``IdentityInstance``.

    Duck-typed (reads ``blocks``, ``min_sound``, ``completeness_bounds``,
    ``anonymous_size``) to keep this module free of model imports.
    """
    return CountingSpec(
        signatures=tuple(
            tuple(sorted(block.signature)) for block in instance.blocks
        ),
        sizes=tuple(block.size for block in instance.blocks),
        min_sound=tuple(instance.min_sound),
        completeness=tuple(instance.completeness_bounds),
        anonymous_size=instance.anonymous_size,
    )


def reduce_spec(
    spec: CountingSpec,
    forced: Optional[Mapping[Optional[int], int]] = None,
    excluded: Optional[Mapping[Optional[int], int]] = None,
) -> Optional[ReducedProblem]:
    """Fold forced-in / forced-out facts into the spec.

    *forced* maps a block index (``None`` = anonymous block) to the number of
    its facts that must appear in the world; *excluded* to the number that
    must not. Returns ``None`` when the request is infeasible outright (more
    facts forced or excluded than a block holds).
    """
    forced = dict(forced or {})
    excluded = dict(excluded or {})
    sizes = list(spec.sizes)
    seed_sound = [0] * spec.n_sources
    seed_total = 0
    anonymous = spec.anonymous_size

    for j, count in forced.items():
        if count < 0:
            return None
        seed_total += count
        if j is None:
            anonymous -= count
            continue
        sizes[j] -= count
        for i in spec.signatures[j]:
            seed_sound[i] += count
    for j, count in excluded.items():
        if count < 0:
            return None
        if j is None:
            anonymous -= count
        else:
            sizes[j] -= count
    if anonymous < 0 or any(size < 0 for size in sizes):
        return None
    return ReducedProblem(
        signatures=spec.signatures,
        sizes=tuple(sizes),
        min_sound=spec.min_sound,
        completeness=spec.completeness,
        anonymous_size=anonymous,
        seed_sound=tuple(seed_sound),
        seed_total=seed_total,
    )


def to_wire(problem: Optional[ReducedProblem]) -> Optional[Tuple[int, ...]]:
    """Encode a reduced problem as one flat tuple of ints.

    The engine ships problems to worker processes; a flat int tuple pickles
    to a fraction of the bytes of the structured ``NamedTuple`` (no per-field
    framing, no :class:`~fractions.Fraction` objects — bounds travel as
    numerator/denominator pairs). The encoding is injective, so wire tuples
    are also usable as exact dedup keys. ``None`` (infeasible) passes through.
    """
    if problem is None:
        return None
    out = [
        problem.n_sources,
        len(problem.sizes),
        problem.anonymous_size,
        problem.seed_total,
    ]
    out.extend(problem.sizes)
    out.extend(problem.min_sound)
    out.extend(problem.seed_sound)
    for c in problem.completeness:
        out.append(c.numerator)
        out.append(c.denominator)
    for signature in problem.signatures:
        out.append(len(signature))
        out.extend(signature)
    return tuple(out)


def from_wire(wire: Optional[Tuple[int, ...]]) -> Optional[ReducedProblem]:
    """Decode :func:`to_wire`; exact inverse."""
    if wire is None:
        return None
    n_sources, n_blocks, anonymous_size, seed_total = wire[:4]
    at = 4
    sizes = wire[at:at + n_blocks]
    at += n_blocks
    min_sound = wire[at:at + n_sources]
    at += n_sources
    seed_sound = wire[at:at + n_sources]
    at += n_sources
    completeness = []
    for _ in range(n_sources):
        completeness.append(Fraction(wire[at], wire[at + 1]))
        at += 2
    signatures = []
    for _ in range(n_blocks):
        width = wire[at]
        at += 1
        signatures.append(wire[at:at + width])
        at += width
    return ReducedProblem(
        signatures=tuple(signatures),
        sizes=sizes,
        min_sound=min_sound,
        completeness=tuple(completeness),
        anonymous_size=anonymous_size,
        seed_sound=seed_sound,
        seed_total=seed_total,
    )


def solve_wire(wire: Optional[Tuple[int, ...]]) -> Tuple[int, int]:
    """Decode-and-solve; the body workers run in other processes."""
    return solve(from_wire(wire))


def partial_binomial_sum(n: int, k_max: int) -> int:
    """``Σ_{k=0..min(k_max, n)} C(n, k)``; 2^n when k_max >= n."""
    if k_max < 0:
        return 0
    if k_max >= n:
        return 1 << n
    return sum(math.comb(n, k) for k in range(k_max + 1))


def max_total_for(
    completeness: Sequence[Fraction], sound_counts: Sequence[int]
) -> Optional[int]:
    """Largest |D| the completeness bounds allow; ``None`` = unbounded."""
    cap: Optional[int] = None
    for i, c in enumerate(completeness):
        if c > 0:
            limit = int(Fraction(sound_counts[i]) / c)
            cap = limit if cap is None else min(cap, limit)
    return cap


def sweep(
    signatures: Sequence[Tuple[int, ...]],
    sizes: Sequence[int],
    n_sources: int,
    initial_sound: Optional[Sequence[int]] = None,
    initial_total: int = 0,
) -> StateMap:
    """The block DP: weight of every reachable (sound counts, total) state."""
    start_sound = tuple(initial_sound) if initial_sound else (0,) * n_sources
    states: StateMap = {(start_sound, initial_total): 1}
    for signature, size in zip(signatures, sizes):
        if size < 0:
            return {}
        signature_set = set(signature)
        next_states: StateMap = {}
        for (sound, total), weight in states.items():
            for chosen in range(size + 1):
                coefficient = math.comb(size, chosen)
                new_sound = tuple(
                    sound[i] + (chosen if i in signature_set else 0)
                    for i in range(n_sources)
                )
                key = (new_sound, total + chosen)
                next_states[key] = next_states.get(key, 0) + weight * coefficient
        states = next_states
    return states


def finish(
    states: StateMap,
    min_sound: Sequence[int],
    completeness: Sequence[Fraction],
    anonymous_size: int,
) -> int:
    """Fold the anonymous block into swept states and total the count."""
    total_count = 0
    n = len(min_sound)
    for (sound, covered_total), weight in states.items():
        if any(sound[i] < min_sound[i] for i in range(n)):
            continue
        cap = max_total_for(completeness, sound)
        if cap is None:
            anonymous_choices = 1 << anonymous_size
        else:
            budget = cap - covered_total
            if budget < 0:
                continue
            anonymous_choices = partial_binomial_sum(anonymous_size, budget)
        total_count += weight * anonymous_choices
    return total_count


def solve(problem: Optional[ReducedProblem]) -> Tuple[int, int]:
    """Count the worlds of a reduced problem.

    Returns ``(count, dp_states)``; *dp_states* is the size of the final DP
    layer, the instrumentation's measure of how hard the sweep was.
    ``None`` problems (infeasible reductions) count zero worlds.
    """
    if problem is None:
        return 0, 0
    states = sweep(
        problem.signatures,
        problem.sizes,
        problem.n_sources,
        initial_sound=problem.seed_sound,
        initial_total=problem.seed_total,
    )
    count = finish(
        states, problem.min_sound, problem.completeness, problem.anonymous_size
    )
    return count, len(states)


def count_worlds(spec: CountingSpec) -> int:
    """``|poss(S)|`` over the finite fact space (``N_sol(Γ)``)."""
    return solve(reduce_spec(spec))[0]
