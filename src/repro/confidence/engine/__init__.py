"""Parallel, memoized confidence engine (see ``docs/performance.md``).

Layering, bottom up:

* :mod:`~repro.confidence.engine.kernel` — the pure counting DP over plain
  data (``CountingSpec`` / ``ReducedProblem``); the unit of work.
* :mod:`~repro.confidence.engine.memo` — canonical keys for alpha-equivalent
  counting problems and the shared LRU cache.
* :mod:`~repro.confidence.engine.executors` — serial / process-pool /
  chunked-batch task execution behind one ``map`` interface.
* :mod:`~repro.confidence.engine.stats` — stage timers and work counters.
* :mod:`~repro.confidence.engine.core` — :class:`ConfidenceEngine`, tying
  the layers together.
"""

from repro.confidence.engine.core import (
    DEFAULT_SAMPLES_PER_CHUNK,
    ConfidenceEngine,
)
from repro.confidence.engine.executors import (
    ChunkedExecutor,
    ProcessExecutor,
    SerialExecutor,
    available_cpus,
    make_executor,
)
from repro.confidence.engine.kernel import (
    CountingSpec,
    ReducedProblem,
    count_worlds,
    reduce_spec,
    solve,
    spec_of,
)
from repro.confidence.engine.memo import (
    DEFAULT_CACHE_SIZE,
    CacheStats,
    LRUMemo,
    canonical_key,
    shared_memo,
)
from repro.confidence.engine.stats import EngineStats, StageStats

__all__ = [
    "ConfidenceEngine",
    "DEFAULT_SAMPLES_PER_CHUNK",
    "SerialExecutor",
    "ProcessExecutor",
    "ChunkedExecutor",
    "make_executor",
    "available_cpus",
    "CountingSpec",
    "ReducedProblem",
    "spec_of",
    "reduce_spec",
    "solve",
    "count_worlds",
    "LRUMemo",
    "CacheStats",
    "canonical_key",
    "shared_memo",
    "DEFAULT_CACHE_SIZE",
    "EngineStats",
    "StageStats",
]
