"""Pluggable task executors: serial, process pool, and chunked batches.

An executor is anything with an ordered ``map(fn, items)`` — the engine is
indifferent to *where* tasks run, which is what makes serial-vs-parallel
equivalence testable: the task list and the aggregation order are fixed
before the executor sees them, so every executor returns the same results
in the same order, only the wall clock differs.

* :class:`SerialExecutor` — in-process, zero overhead, the reference.
* :class:`ProcessExecutor` — a ``multiprocessing.Pool``; one task per IPC
  round-trip, best for few heavy tasks (exact block counts).
* :class:`ChunkedExecutor` — groups tasks into per-worker batches before
  dispatch, amortizing pickling/IPC over many light tasks (Monte-Carlo
  sample chunks, many small blocks).

``ProcessExecutor`` degrades to serial execution (recording
``degraded=True``) when worker processes cannot be created — sandboxes,
restricted containers — rather than failing the computation.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class SerialExecutor:
    """Run tasks in-process, in order. The reference executor."""

    name = "serial"

    def __init__(self):
        self.workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessExecutor:
    """A lazily created ``multiprocessing.Pool``; one task per dispatch.

    *fn* and every item must be picklable (the engine's tasks are plain
    tuples of plain data, so they are). The pool persists across ``map``
    calls until :meth:`close`.
    """

    name = "process"

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 2:
            raise ValueError("ProcessExecutor needs at least 2 workers")
        self.workers = workers
        self._start_method = start_method
        self._pool = None
        self.degraded = False
        self.respawns = 0

    def _ensure_pool(self):
        if self._pool is None and not self.degraded:
            try:
                context = multiprocessing.get_context(self._start_method)
                self._pool = context.Pool(self.workers)
            except (OSError, ValueError):
                # No permission to spawn processes here: stay correct,
                # lose the parallelism.
                self.degraded = True
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool()
        if pool is None:
            return [fn(item) for item in items]
        return pool.map(fn, items, chunksize=1)

    def respawn(self) -> None:
        """Discard a (broken) pool; the next ``map`` builds a fresh one.

        ``terminate`` rather than ``close``: a pool whose workers died
        mid-task never drains cleanly, and ``close``/``join`` would hang
        on it. Clears ``degraded`` too — a broken pool says nothing about
        whether a *new* one can be spawned.
        """
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:
                pass  # a half-dead pool may fail its own teardown
            self._pool = None
        self.degraded = False
        self.respawns += 1

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _run_chunk(payload):
    fn, chunk = payload
    return [fn(item) for item in chunk]


class ChunkedExecutor(ProcessExecutor):
    """A process pool fed per-worker batches instead of single tasks."""

    name = "chunked"

    def __init__(
        self,
        workers: int,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        super().__init__(workers, start_method=start_method)
        self.chunk_size = chunk_size

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool()
        if pool is None:
            return [fn(item) for item in items]
        size = self.chunk_size
        if size is None:
            size = max(1, (len(items) + self.workers - 1) // self.workers)
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        results: List[R] = []
        for chunk_result in pool.map(
            _run_chunk, [(fn, chunk) for chunk in chunks], chunksize=1
        ):
            results.extend(chunk_result)
        return results


def make_executor(
    workers: int = 0,
    mode: str = "process",
    chunk_size: Optional[int] = None,
):
    """Executor factory: ``workers <= 1`` is serial regardless of *mode*."""
    if workers <= 1:
        return SerialExecutor()
    if mode == "process":
        return ProcessExecutor(workers)
    if mode == "chunked":
        return ChunkedExecutor(workers, chunk_size=chunk_size)
    if mode == "serial":
        return SerialExecutor()
    raise ValueError(f"unknown executor mode {mode!r}")
