"""Lightweight engine instrumentation: stage timers and work counters.

Every :class:`~repro.confidence.engine.core.ConfidenceEngine` carries one
:class:`EngineStats`; the CLI's ``--stats`` flag and the E1/E4/E6 benchmark
tables render it. Overhead is a few ``perf_counter`` calls per stage — safe
to leave on permanently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.confidence.engine.memo import CacheStats


@dataclass
class StageStats:
    """Wall time and call count of one named engine stage."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class EngineStats:
    """Counters for one engine instance.

    ``worlds_counted`` is the latest ``|poss(S)|`` denominator computed;
    ``dp_states`` accumulates final-layer DP state counts across counting
    tasks (the size of the swept state space, the engine's work measure);
    ``tasks_memoized`` out of ``tasks_submitted`` were answered by the
    cache without running a sweep; ``tasks_dispatched`` actually reached
    the executor (submitted − memoized − deduplicated-within-batch).
    """

    executor: str = "serial"
    workers: int = 1
    stages: Dict[str, StageStats] = field(default_factory=dict)
    tasks_submitted: int = 0
    tasks_memoized: int = 0
    tasks_dispatched: int = 0
    worlds_counted: int = 0
    dp_states: int = 0
    samples_drawn: int = 0
    cache: Optional[CacheStats] = None

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Accumulate wall time of a ``with``-scoped stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            entry = self.stages.setdefault(stage, StageStats())
            entry.calls += 1
            entry.seconds += time.perf_counter() - start

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot (the CLI's ``--stats`` JSON line).

        Every value is a plain int/float/str/dict so ``json.dumps`` works
        directly; external monitors and E16 scrape this shape.
        """
        return {
            "executor": self.executor,
            "workers": self.workers,
            "stages": {
                name: {"calls": stage.calls, "seconds": stage.seconds}
                for name, stage in sorted(self.stages.items())
            },
            "tasks": {
                "submitted": self.tasks_submitted,
                "memoized": self.tasks_memoized,
                "dispatched": self.tasks_dispatched,
            },
            "worlds_counted": self.worlds_counted,
            "dp_states": self.dp_states,
            "samples_drawn": self.samples_drawn,
            "cache": None
            if self.cache is None
            else {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
                "evictions": self.cache.evictions,
                "size": self.cache.size,
                "maxsize": self.cache.maxsize,
            },
        }

    def render(self) -> str:
        """A human-readable multi-line report (the ``--stats`` output)."""
        lines: List[str] = [f"executor: {self.executor} (workers={self.workers})"]
        for name, stage in sorted(self.stages.items()):
            lines.append(
                f"stage {name:<12} {stage.seconds * 1000:9.2f} ms"
                f"  ({stage.calls} call{'s' if stage.calls != 1 else ''})"
            )
        lines.append(
            f"counting tasks: {self.tasks_submitted} submitted, "
            f"{self.tasks_memoized} memoized, "
            f"{self.tasks_dispatched} computed"
        )
        lines.append(f"dp states swept: {self.dp_states}")
        if self.worlds_counted:
            lines.append(f"possible worlds |poss(S)|: {self.worlds_counted}")
        if self.samples_drawn:
            lines.append(f"monte-carlo samples drawn: {self.samples_drawn}")
        if self.cache is not None:
            lines.append(
                f"cache: {self.cache.hits} hits / {self.cache.misses} misses "
                f"(rate {self.cache.hit_rate:.0%}), "
                f"{self.cache.size}/{self.cache.maxsize} entries, "
                f"{self.cache.evictions} evictions"
            )
        else:
            lines.append("cache: disabled")
        return "\n".join(lines)
