"""The confidence engine: block-parallel, memoized exact + Monte-Carlo.

:class:`ConfidenceEngine` answers the same questions as
:class:`~repro.confidence.blocks.BlockCounter` — exact confidences over an
identity-view collection — but decomposes the work into independent counting
tasks (one per signature block, plus one denominator), consults the memo
first, and dispatches the remaining tasks through a pluggable executor.
Monte-Carlo estimation splits the sample budget into fixed-size chunks with
per-chunk deterministic seeds, so the estimate is a pure function of
``(instance, facts, samples, seed)`` — *identical* under every executor; the
executor only decides how many chunks run concurrently.

The task list and the aggregation are fixed before dispatch, which is the
engine's central invariant: serial and parallel execution are exactly
equivalent, tested property-style in
``tests/property/test_engine_equivalence.py``.
"""

from __future__ import annotations

import random
import time
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import InconsistentCollectionError
from repro.model.atoms import Atom
from repro.confidence.engine import kernel
from repro.confidence.engine.executors import make_executor
from repro.confidence.engine.memo import LRUMemo, canonical_key, shared_memo
from repro.confidence.engine.stats import EngineStats

if TYPE_CHECKING:  # imported lazily at runtime (blocks.py imports the kernel)
    from repro.confidence.blocks import IdentityInstance
    from repro.sources.collection import SourceCollection

#: Monte-Carlo samples per dispatch chunk (fixed so that the chunking — and
#: therefore the estimate — does not depend on the executor or worker count).
DEFAULT_SAMPLES_PER_CHUNK = 1000


def _solve_task(wire) -> Tuple[int, int, float]:
    """Worker body for one exact counting task (picklable, top level).

    Receives the :func:`~repro.confidence.engine.kernel.to_wire` encoding —
    one flat int tuple — so cross-process chunk shipping serializes plain
    integers instead of structured Fractions.
    """
    start = time.perf_counter()
    count, dp_states = kernel.solve_wire(wire)
    return count, dp_states, time.perf_counter() - start


def _mc_task(payload) -> Tuple[List[int], int]:
    """Worker body for one Monte-Carlo chunk: per-fact hit counts."""
    instance, facts, n_samples, seed = payload
    from repro.confidence.montecarlo import WorldSampler

    sampler = WorldSampler(instance, random.Random(seed))
    hits = [0] * len(facts)
    for _ in range(n_samples):
        world = sampler.sample()
        for index, f in enumerate(facts):
            if f in world:
                hits[index] += 1
    return hits, n_samples


def _chunk_seed(seed: int, chunk_index: int) -> int:
    """Deterministic, well-spread per-chunk RNG seed."""
    return (seed * 1_000_003 + chunk_index) & 0xFFFFFFFFFFFF


class ConfidenceEngine:
    """Parallel, memoized confidence computation for identity collections.

    Parameters
    ----------
    collection:
        A :class:`SourceCollection` (with *domain*) or a prebuilt
        :class:`IdentityInstance`.
    workers:
        ``0``/``1`` = serial; ``>= 2`` = that many worker processes.
    mode:
        ``"process"`` (one task per dispatch), ``"chunked"`` (batched
        dispatch), or ``"serial"``. Ignored when ``workers <= 1``.
    cache_size:
        ``None`` = share the process-wide memo; ``0`` = no memoization;
        otherwise a private :class:`LRUMemo` of that capacity.
    memo / executor:
        Explicit instances override the above (e.g. to share a memo
        between engines while keeping private executors).
    """

    def __init__(
        self,
        collection: Union[SourceCollection, IdentityInstance],
        domain: Optional[Iterable] = None,
        *,
        workers: int = 0,
        mode: str = "process",
        chunk_size: Optional[int] = None,
        cache_size: Optional[int] = None,
        memo: Optional[LRUMemo] = None,
        executor=None,
    ):
        from repro.confidence.blocks import IdentityInstance

        if isinstance(collection, IdentityInstance):
            self.instance = collection
        else:
            if domain is None:
                raise ValueError(
                    "ConfidenceEngine needs a domain alongside a collection"
                )
            self.instance = IdentityInstance(collection, domain)
        self.spec = kernel.spec_of(self.instance)
        if memo is not None:
            self.memo: Optional[LRUMemo] = memo
        elif cache_size is None:
            self.memo = shared_memo()
        elif cache_size == 0:
            self.memo = None
        else:
            self.memo = LRUMemo(cache_size)
        self.executor = executor if executor is not None else make_executor(
            workers, mode=mode, chunk_size=chunk_size
        )
        self.stats = EngineStats(
            executor=self.executor.name, workers=self.executor.workers
        )

    # -- exact counting ---------------------------------------------------------

    def _count_many(
        self, problems: Sequence[Optional[kernel.ReducedProblem]]
    ) -> List[int]:
        """Counts for several reduced problems: memo, dedup, then dispatch."""
        counts: List[Optional[int]] = [None] * len(problems)
        pending: Dict[object, List[int]] = {}
        pending_problems: List[Tuple[int, ...]] = []
        pending_keys: List[object] = []

        with self.stats.time("plan"):
            for index, problem in enumerate(problems):
                if problem is None:
                    counts[index] = 0
                    continue
                self.stats.tasks_submitted += 1
                key = canonical_key(problem) if self.memo is not None else problem
                if self.memo is not None:
                    hit, value = self.memo.lookup(key)
                    if hit:
                        self.stats.tasks_memoized += 1
                        counts[index] = value
                        continue
                if key in pending:
                    pending[key].append(index)
                else:
                    pending[key] = [index]
                    pending_problems.append(kernel.to_wire(problem))
                    pending_keys.append(key)

        if pending_problems:
            self.stats.tasks_dispatched += len(pending_problems)
            with self.stats.time("count"):
                results = self.executor.map(_solve_task, pending_problems)
            for key, (count, dp_states, _elapsed) in zip(pending_keys, results):
                self.stats.dp_states += dp_states
                if self.memo is not None:
                    self.memo.store(key, count)
                for index in pending[key]:
                    counts[index] = count

        if self.memo is not None:
            self.stats.cache = self.memo.stats()
        return counts  # type: ignore[return-value]

    def count_worlds(self) -> int:
        """``|poss(S)|`` over the finite fact space."""
        count = self._count_many([kernel.reduce_spec(self.spec)])[0]
        self.stats.worlds_counted = count
        return count

    def is_consistent(self) -> bool:
        """Non-emptiness of poss(S) over the finite fact space."""
        return self.count_worlds() > 0

    def _denominator(self) -> int:
        denominator = self.count_worlds()
        if denominator == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        return denominator

    def confidences(self) -> Dict[Atom, Fraction]:
        """Exact confidence of every covered fact (global form).

        One counting task per signature block plus the shared denominator;
        block-mates reuse their block's count (facts in a block are
        interchangeable).
        """
        instance = self.instance
        with self.stats.time("decompose"):
            problems = [kernel.reduce_spec(self.spec)]
            block_indices: List[int] = []
            for j, block in enumerate(instance.blocks):
                if block.facts:
                    problems.append(kernel.reduce_spec(self.spec, forced={j: 1}))
                    block_indices.append(j)
        counts = self._count_many(problems)
        denominator = counts[0]
        self.stats.worlds_counted = denominator
        if denominator == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        with self.stats.time("assemble"):
            out: Dict[Atom, Fraction] = {}
            for j, numerator in zip(block_indices, counts[1:]):
                confidence = Fraction(numerator, denominator)
                for f in instance.blocks[j].facts:
                    out[f] = confidence
        return out

    def confidence(self, fact: Atom) -> Fraction:
        """Exact confidence of one fact (covered or anonymous)."""
        return self.joint_confidence([fact])

    def joint_confidence(self, facts: Iterable[Atom]) -> Fraction:
        """``Pr(all facts ∈ D | D ∈ poss(S))`` — one forced-blocks task."""
        instance = self.instance
        with self.stats.time("decompose"):
            forced: Dict[Optional[int], int] = {}
            in_space = True
            for f in {Atom(instance.relation, f.args) for f in facts}:
                if not instance.in_fact_space(f):
                    in_space = False
                    break
                j = instance.block_of(f)
                forced[j] = forced.get(j, 0) + 1
            problems: List[Optional[kernel.ReducedProblem]] = [
                kernel.reduce_spec(self.spec),
                kernel.reduce_spec(self.spec, forced=forced) if in_space else None,
            ]
        counts = self._count_many(problems)
        self.stats.worlds_counted = counts[0]
        if counts[0] == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        return Fraction(counts[1], counts[0])

    # -- Monte Carlo ------------------------------------------------------------

    def estimate_confidences(
        self,
        facts: Iterable[Atom],
        samples: int,
        seed: int = 0,
        samples_per_chunk: int = DEFAULT_SAMPLES_PER_CHUNK,
    ) -> Dict[Atom, float]:
        """Monte-Carlo confidence estimates from *samples* uniform worlds.

        The budget is split into ``ceil(samples / samples_per_chunk)``
        chunks, each drawn by an independent sampler seeded from
        ``(seed, chunk index)`` — deterministic and executor-independent.
        """
        if samples <= 0:
            raise ValueError("samples must be positive")
        instance = self.instance
        renamed = tuple(
            dict.fromkeys(Atom(instance.relation, f.args) for f in facts)
        )
        with self.stats.time("decompose"):
            chunks = []
            remaining = samples
            chunk_index = 0
            while remaining > 0:
                n = min(samples_per_chunk, remaining)
                chunks.append(
                    (instance, renamed, n, _chunk_seed(seed, chunk_index))
                )
                remaining -= n
                chunk_index += 1
        with self.stats.time("montecarlo"):
            results = self.executor.map(_mc_task, chunks)
        with self.stats.time("assemble"):
            totals = [0] * len(renamed)
            drawn = 0
            for hits, n in results:
                drawn += n
                for index, h in enumerate(hits):
                    totals[index] += h
            self.stats.samples_drawn += drawn
            return {f: totals[i] / drawn for i, f in enumerate(renamed)}

    def estimate_confidence(
        self,
        fact: Atom,
        samples: int,
        seed: int = 0,
        samples_per_chunk: int = DEFAULT_SAMPLES_PER_CHUNK,
    ) -> float:
        """Monte-Carlo estimate for a single fact."""
        estimates = self.estimate_confidences(
            [fact], samples, seed=seed, samples_per_chunk=samples_per_chunk
        )
        return next(iter(estimates.values()))

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Release worker processes (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "ConfidenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
