"""Sampling possible worlds and Monte-Carlo confidence estimation.

For identity-view collections the block DP supports *exact uniform* sampling
from poss(S) (backward sampling through the DP layers), so Monte-Carlo
estimates converge to the exact confidences — experiment E4 measures the
error/time trade-off against exact counting. A generic rejection sampler is
included for arbitrary views over tiny domains (tests only).
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import DomainTooLargeError, InconsistentCollectionError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.sources.collection import SourceCollection
from repro.confidence.blocks import IdentityInstance, _partial_binomial_sum
from repro.confidence.worlds import fact_space

State = Tuple[Tuple[int, ...], int]


def _weighted_index(weights: Sequence[int], rng: random.Random) -> int:
    """Index sampled proportionally to integer weights (exact arithmetic)."""
    total = sum(weights)
    if total <= 0:
        raise InconsistentCollectionError("no positive-weight alternatives")
    pick = rng.randrange(total)
    accumulated = 0
    for index, weight in enumerate(weights):
        accumulated += weight
        if pick < accumulated:
            return index
    raise AssertionError("unreachable")


class WorldSampler:
    """Exact uniform sampler over poss(S) for an identity-view collection.

    Runs the signature-block dynamic program once, storing every layer, then
    draws worlds by backward sampling: final state ∝ weight × anonymous
    choices, anonymous count ∝ C(N₀, j), per-block occupancy backwards
    through the layers, and finally uniform subsets within each block.

    >>> # see tests/confidence/test_montecarlo.py
    """

    def __init__(self, instance: IdentityInstance, rng: Optional[random.Random] = None):
        self.instance = instance
        self.rng = rng if rng is not None else random.Random()
        n = instance.n_sources
        start: State = ((0,) * n, 0)
        self.layers: List[Dict[State, int]] = [{start: 1}]
        for block in instance.blocks:
            previous = self.layers[-1]
            layer: Dict[State, int] = {}
            for (sound, total), weight in previous.items():
                for chosen in range(block.size + 1):
                    coefficient = math.comb(block.size, chosen)
                    new_sound = tuple(
                        sound[i] + (chosen if i in block.signature else 0)
                        for i in range(n)
                    )
                    key = (new_sound, total + chosen)
                    layer[key] = layer.get(key, 0) + weight * coefficient
            self.layers.append(layer)

        # Final states annotated with anonymous-block multiplicities.
        self.final_states: List[State] = []
        self.final_weights: List[int] = []
        self.anonymous_budgets: List[Optional[int]] = []
        for state, weight in self.layers[-1].items():
            sound, covered = state
            if any(sound[i] < instance.min_sound[i] for i in range(n)):
                continue
            cap = instance.max_total_for(sound)
            if cap is None:
                budget: Optional[int] = None
                choices = 1 << instance.anonymous_size
            else:
                budget = cap - covered
                if budget < 0:
                    continue
                choices = _partial_binomial_sum(instance.anonymous_size, budget)
            if weight * choices > 0:
                self.final_states.append(state)
                self.final_weights.append(weight * choices)
                self.anonymous_budgets.append(budget)
        self.total_worlds = sum(self.final_weights)

    def count_worlds(self) -> int:
        """|poss(S)| over the fact space (agrees with BlockCounter)."""
        return self.total_worlds

    def sample(self) -> GlobalDatabase:
        """One world drawn uniformly from poss(S)."""
        if self.total_worlds == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        instance = self.instance
        rng = self.rng
        index = _weighted_index(self.final_weights, rng)
        state = self.final_states[index]
        budget = self.anonymous_budgets[index]

        # Anonymous occupancy: P(j) ∝ C(N0, j), j ≤ budget.
        n0 = instance.anonymous_size
        limit = n0 if budget is None else min(budget, n0)
        anon_weights = [math.comb(n0, j) for j in range(limit + 1)]
        anonymous_count = _weighted_index(anon_weights, rng)

        # Backward through the block layers.
        counts: List[int] = [0] * len(instance.blocks)
        for j in range(len(instance.blocks) - 1, -1, -1):
            block = instance.blocks[j]
            sound, total = state
            alternatives: List[Tuple[State, int]] = []
            weights: List[int] = []
            for chosen in range(min(block.size, total) + 1):
                previous_sound = tuple(
                    sound[i] - (chosen if i in block.signature else 0)
                    for i in range(instance.n_sources)
                )
                if any(x < 0 for x in previous_sound):
                    continue
                previous: State = (previous_sound, total - chosen)
                weight = self.layers[j].get(previous, 0)
                if weight:
                    alternatives.append((previous, chosen))
                    weights.append(weight * math.comb(block.size, chosen))
            picked = _weighted_index(weights, rng)
            state, counts[j] = alternatives[picked]

        facts: List[Atom] = []
        for block, count in zip(instance.blocks, counts):
            facts.extend(rng.sample(block.facts, count))
        facts.extend(self._sample_anonymous(anonymous_count))
        return GlobalDatabase(facts)

    def _sample_anonymous(self, count: int) -> List[Atom]:
        """*count* distinct facts outside every extension, uniformly."""
        if count == 0:
            return []
        instance = self.instance
        covered = {f for block in instance.blocks for f in block.facts}
        if instance.anonymous_size <= 4 * count or instance.anonymous_size <= 64:
            pool = [
                Atom(instance.relation, combo)
                for combo in product(instance.domain, repeat=instance.arity)
                if Atom(instance.relation, combo) not in covered
            ]
            return self.rng.sample(pool, count)
        chosen: set = set()
        while len(chosen) < count:
            combo = tuple(self.rng.choice(instance.domain) for _ in range(instance.arity))
            candidate = Atom(instance.relation, combo)
            if candidate not in covered:
                chosen.add(candidate)
        return list(chosen)

    def estimate_confidence(self, fact: Atom, samples: int) -> float:
        """Monte-Carlo estimate of confidence(fact) from *samples* draws."""
        renamed = Atom(self.instance.relation, fact.args)
        hits = sum(1 for _ in range(samples) if renamed in self.sample())
        return hits / samples

    def estimate_confidences(
        self, facts: Iterable[Atom], samples: int
    ) -> Dict[Atom, float]:
        """Joint Monte-Carlo estimates from one stream of sampled worlds."""
        renamed = [Atom(self.instance.relation, f.args) for f in facts]
        hits = {f: 0 for f in renamed}
        for _ in range(samples):
            world = self.sample()
            for f in renamed:
                if f in world:
                    hits[f] += 1
        return {f: h / samples for f, h in hits.items()}


def rejection_sample_worlds(
    collection: SourceCollection,
    domain: Iterable,
    samples: int,
    rng: Optional[random.Random] = None,
    max_tries: int = 1_000_000,
) -> List[GlobalDatabase]:
    """Uniform worlds for arbitrary views by rejection from random subsets.

    Exponentially inefficient in general (acceptance = |poss| / 2^N); only
    suitable for tiny fact spaces in tests and sanity checks.
    """
    rng = rng if rng is not None else random.Random()
    candidates = fact_space(collection, domain)
    if len(candidates) > 30:
        raise DomainTooLargeError(
            f"rejection sampling over {len(candidates)} candidate facts"
        )
    worlds: List[GlobalDatabase] = []
    tries = 0
    while len(worlds) < samples:
        tries += 1
        if tries > max_tries:
            raise InconsistentCollectionError(
                f"rejection sampling failed to find {samples} worlds in "
                f"{max_tries} tries (acceptance rate too low or inconsistent)"
            )
        subset = [f for f in candidates if rng.random() < 0.5]
        world = GlobalDatabase(subset)
        if collection.admits(world):
            worlds.append(world)
    return worlds
