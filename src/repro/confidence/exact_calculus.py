"""An exact confidence calculus for monotone algebra queries.

Definition 5.1 propagates tuple confidences with ⊕ and ·, implicitly
assuming the combined membership events are independent — experiment E6
shows real deviations when a projection merges correlated facts or a
product reuses the same relation. This module removes the assumption for
the §5.1 setting (identity-view collections):

* Every produced tuple's membership event is a **positive DNF** over base
  facts: scans yield single-fact monomials, selections filter, projections
  take unions of alternatives, products conjoin monomials pairwise, unions
  merge alternatives. Monotone operators never introduce negation.
* The probability of a positive DNF follows by inclusion–exclusion, where
  every term is the probability of a *conjunction of base facts* — exactly
  what :meth:`BlockCounter.count_worlds_containing_all` computes in
  polynomial time.

The result equals the possible-worlds confidence ``confidence_Q(t)``
*exactly* (differentially tested against world enumeration), at a cost
exponential only in the number of DNF alternatives per tuple (capped;
typical projections merge a handful of rows). Facts outside every
extension ("anonymous") are folded into the event population when their
number is enumerable; otherwise information-losing queries are refused
rather than silently under-counted.

This is the constructive form of the paper's Theorem 5.1: the calculus is
correct once the probability of unions is computed from the true joint
distribution instead of the independence approximation.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.exceptions import DomainTooLargeError, QueryError
from repro.model.atoms import Atom
from repro.algebra.ast import (
    AlgebraQuery,
    Product,
    Projection,
    RelationScan,
    Row,
    Selection,
    UnionNode,
)
from repro.confidence.blocks import BlockCounter, IdentityInstance

#: A monomial is a conjunction of base facts; an event is a set of monomials.
Monomial = FrozenSet[Atom]
Event = FrozenSet[Monomial]

#: Inclusion–exclusion over k alternatives costs 2^k joint counts.
MAX_ALTERNATIVES = 16

#: Anonymous facts are folded into the event population only up to this
#: count; beyond it, information-losing queries are refused (see
#: :meth:`ExactCalculus.confidences`).
MAX_ANONYMOUS_ENUMERATION = 32


def _absorb(monomials: Iterable[Monomial]) -> Event:
    """Drop monomials subsumed by smaller ones (absorption: a ∨ ab = a)."""
    unique = sorted(set(monomials), key=len)
    kept: List[Monomial] = []
    for monomial in unique:
        if not any(existing <= monomial for existing in kept):
            kept.append(monomial)
    return frozenset(kept)


def event_probability(event: Event, counter: BlockCounter) -> Fraction:
    """Probability that at least one monomial holds, by inclusion–exclusion."""
    monomials = sorted(event, key=lambda m: (len(m), sorted(map(str, m))))
    if not monomials:
        return Fraction(0)
    if len(monomials) > MAX_ALTERNATIVES:
        raise DomainTooLargeError(
            f"event has {len(monomials)} alternatives "
            f"(> {MAX_ALTERNATIVES}); inclusion-exclusion would need "
            f"2^{len(monomials)} joint counts"
        )
    total_worlds = counter.count_worlds()
    if total_worlds == 0:
        from repro.exceptions import InconsistentCollectionError

        raise InconsistentCollectionError(
            "collection admits no possible database over this domain"
        )
    probability = Fraction(0)
    for size in range(1, len(monomials) + 1):
        sign = 1 if size % 2 == 1 else -1
        for subset in combinations(monomials, size):
            conjunction: Set[Atom] = set()
            for monomial in subset:
                conjunction |= monomial
            count = counter.count_worlds_containing_all(conjunction)
            probability += sign * Fraction(count, total_worlds)
    return probability


def _is_lossy(query: AlgebraQuery) -> bool:
    """Does any projection in the tree drop information?

    A projection keeping every child column (in any order, possibly with
    duplicates or added literals) maps distinct child rows to distinct
    images, so facts outside the event population cannot collide with a
    tracked row's image. Dropping a column (or keeping only literals) can.
    """
    if isinstance(query, Projection):
        child_width = query.child.width()
        kept = {c for c in query.columns if isinstance(c, int)}
        if child_width >= 0 and kept != set(range(child_width)):
            return True
        return _is_lossy(query.child)
    if isinstance(query, Selection):
        return _is_lossy(query.child)
    if isinstance(query, (Product, UnionNode)):
        return _is_lossy(query.left) or _is_lossy(query.right)
    return False


class ExactCalculus:
    """Exact conf_Q over an identity-view collection.

    The event population is the **whole fact space** whenever the anonymous
    part (facts outside every extension) is small enough to enumerate
    (≤ ``MAX_ANONYMOUS_ENUMERATION``); then every query is exact. With a
    huge anonymous population, only *information-preserving* queries (no
    column-dropping projections) are answered — a lossy image could also be
    produced by un-enumerated anonymous facts, which would silently
    under-count, so those queries raise instead.

    >>> # see tests/confidence/test_exact_calculus.py
    """

    def __init__(self, instance: IdentityInstance):
        self.instance = instance
        self.counter = BlockCounter(instance)
        covered = [f for block in instance.blocks for f in block.facts]
        self.population_complete = (
            instance.anonymous_size <= MAX_ANONYMOUS_ENUMERATION
        )
        if self.population_complete and instance.anonymous_size > 0:
            from itertools import product as iter_product

            covered_set = set(covered)
            for combo in iter_product(instance.domain, repeat=instance.arity):
                candidate = Atom(instance.relation, combo)
                if candidate not in covered_set:
                    covered.append(candidate)
        self._population: Tuple[Atom, ...] = tuple(covered)

    # -- symbolic pass ---------------------------------------------------------

    def events(self, query: AlgebraQuery) -> Dict[Row, Event]:
        """Membership events for every derivable row (over the population)."""
        if isinstance(query, RelationScan):
            if query.relation != self.instance.relation:
                raise QueryError(
                    f"exact calculus scans only the identity relation "
                    f"{self.instance.relation!r}, got {query.relation!r}"
                )
            if query.arity != self.instance.arity:
                raise QueryError(
                    f"scan arity {query.arity} != relation arity "
                    f"{self.instance.arity}"
                )
            return {
                f.args: frozenset({frozenset({f})}) for f in self._population
            }
        if isinstance(query, Selection):
            child = self.events(query.child)
            return {
                row: event
                for row, event in child.items()
                if query.condition(row)
            }
        if isinstance(query, Projection):
            child = self.events(query.child)
            grouped: Dict[Row, Set[Monomial]] = {}
            for row, event in child.items():
                image = tuple(
                    row[c] if isinstance(c, int) else c for c in query.columns
                )
                grouped.setdefault(image, set()).update(event)
            return {image: _absorb(ms) for image, ms in grouped.items()}
        if isinstance(query, Product):
            left = self.events(query.left)
            right = self.events(query.right)
            out: Dict[Row, Event] = {}
            for l_row, l_event in left.items():
                for r_row, r_event in right.items():
                    monomials = {
                        l_mono | r_mono
                        for l_mono in l_event
                        for r_mono in r_event
                    }
                    out[l_row + r_row] = _absorb(monomials)
            return out
        if isinstance(query, UnionNode):
            left = self.events(query.left)
            right = self.events(query.right)
            out = dict(left)
            for row, event in right.items():
                if row in out:
                    out[row] = _absorb(out[row] | event)
                else:
                    out[row] = event
            return out
        raise QueryError(f"no exact rule for node {type(query).__name__}")

    # -- numeric pass -----------------------------------------------------------

    def confidences(self, query: AlgebraQuery) -> Dict[Row, Fraction]:
        """Exact possible-worlds confidence of every derivable row.

        Raises :class:`~repro.exceptions.DomainTooLargeError` for an
        information-losing query when the anonymous population could not be
        enumerated (the result would silently under-count).
        """
        if not self.population_complete and _is_lossy(query):
            raise DomainTooLargeError(
                f"{self.instance.anonymous_size} anonymous facts (> "
                f"{MAX_ANONYMOUS_ENUMERATION}) cannot be folded into the "
                "event population, and this query drops columns — anonymous "
                "facts could contribute to its answers. Use world "
                "enumeration or sampling instead."
            )
        return {
            row: event_probability(event, self.counter)
            for row, event in self.events(query).items()
        }

    def confidence(self, query: AlgebraQuery, row: Row) -> Fraction:
        """Exact confidence of one row (0 when not derivable from covered
        facts)."""
        return self.confidences(query).get(row, Fraction(0))
