"""Aggregate statistics over the possible-world distribution.

Beyond per-tuple confidence, users of an integration system ask aggregate
questions: *how many answers should I expect?* *how big is the true
database likely to be?* Linearity of expectation makes expected cardinality
exact even though tuple memberships are correlated — no independence
assumption is needed, unlike the Definition 5.1 calculus:

    E[|Q(D)|] = Σ_{t ∈ Q^*(S)} confidence_Q(t)

For identity collections these sums are exact Fractions via block counting;
for arbitrary queries they come from world enumeration or exact sampling.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Union

from repro.model.atoms import Atom
from repro.queries.conjunctive import ConjunctiveQuery
from repro.algebra.ast import AlgebraQuery
from repro.sources.collection import SourceCollection
from repro.confidence.answers import answer_query
from repro.confidence.blocks import BlockCounter, IdentityInstance

Query = Union[ConjunctiveQuery, AlgebraQuery]


def expected_base_size(
    collection: SourceCollection, domain: Iterable
) -> Fraction:
    """``E[|D|]`` for an identity collection (exact, block DP)."""
    return BlockCounter(
        IdentityInstance(collection, domain)
    ).expected_world_size()


def world_size_distribution(
    collection: SourceCollection, domain: Iterable
) -> Dict[int, Fraction]:
    """``Pr(|D| = k)`` for an identity collection, as exact probabilities."""
    counter = BlockCounter(IdentityInstance(collection, domain))
    counts = counter.world_size_distribution()
    total = sum(counts.values())
    if total == 0:
        from repro.exceptions import InconsistentCollectionError

        raise InconsistentCollectionError(
            "collection admits no possible database over this domain"
        )
    return {size: Fraction(count, total) for size, count in counts.items()}


def expected_answer_cardinality(
    query: Query,
    collection: SourceCollection,
    domain: Iterable,
    worlds=None,
) -> Fraction:
    """``E[|Q(D)|]`` — the expected number of answers to a query.

    Computed as the sum of the per-answer confidences (linearity of
    expectation; exact regardless of correlations). *worlds* may supply
    pre-enumerated or exactly-sampled worlds, as in
    :func:`repro.confidence.answers.answer_query`.
    """
    result = answer_query(query, collection, domain, worlds=worlds)
    return sum(result.confidences.values(), Fraction(0))


def answer_cardinality_bounds(
    query: Query,
    collection: SourceCollection,
    domain: Iterable,
    worlds=None,
) -> Dict[str, Fraction]:
    """Certain/expected/possible answer counts in one shot.

    ``|Q_*| ≤ E[|Q(D)|] ≤ |Q^*|`` always holds; returned under the keys
    ``"certain"``, ``"expected"``, ``"possible"``.
    """
    result = answer_query(query, collection, domain, worlds=worlds)
    return {
        "certain": Fraction(len(result.certain)),
        "expected": sum(result.confidences.values(), Fraction(0)),
        "possible": Fraction(len(result.possible)),
    }
