"""The 0/1 linear system Γ of Section 5.1, materialized explicitly.

For an identity-view collection over a finite domain, Section 5.1 enumerates
the fact space t_1..t_N, associates a 0/1 variable x_i with each fact, and
collects, per source, the inequalities

    Σ_{t_j ∈ v_i} x_j (1 − c_i)  −  Σ_{t_j ∉ v_i} c_i x_j  ≥ 0      (completeness)
    Σ_{t_j ∈ v_i} x_j                                  ≥ s_i |v_i|  (soundness)

This module builds Γ with exact Fraction coefficients, enumerates its 0/1
solutions by brute force (2^N — the paper's "at least in principle" method),
and serves as the differential-testing oracle for the polynomial
block-counting algorithm in :mod:`repro.confidence.blocks`.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import DomainTooLargeError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.confidence.blocks import IdentityInstance

#: Refuse brute-force enumeration beyond this many variables (2^24 worlds).
MAX_BRUTE_FORCE_VARIABLES = 24


class Inequality:
    """``Σ coefficients[j]·x_j ≥ bound`` with exact rational coefficients."""

    __slots__ = ("coefficients", "bound", "label")

    def __init__(self, coefficients: Sequence[Fraction], bound: Fraction, label: str):
        self.coefficients = tuple(coefficients)
        self.bound = bound
        self.label = label

    def satisfied_by(self, assignment: Sequence[int]) -> bool:
        total = sum(
            c * x for c, x in zip(self.coefficients, assignment) if x and c
        )
        return total >= self.bound

    def __repr__(self) -> str:
        return f"Inequality({self.label!r}, bound={self.bound})"


class GammaSystem:
    """The explicit system Γ: one 0/1 variable per fact of the fact space.

    >>> # see tests/confidence/test_linear_system.py for full examples
    """

    def __init__(self, instance: IdentityInstance):
        self.instance = instance
        self.facts: Tuple[Atom, ...] = tuple(
            sorted(
                Atom(instance.relation, combo)
                for combo in product(instance.domain, repeat=instance.arity)
            )
        )
        self._index: Dict[Atom, int] = {f: j for j, f in enumerate(self.facts)}
        self.inequalities: List[Inequality] = []
        for i in range(instance.n_sources):
            extension = instance.extensions[i]
            c = instance.completeness_bounds[i]
            s = instance.soundness_bounds[i]
            k = len(extension)
            membership = [f in extension for f in self.facts]
            completeness_coeffs = [
                (Fraction(1) - c) if member else -c for member in membership
            ]
            soundness_coeffs = [
                Fraction(1) if member else Fraction(0) for member in membership
            ]
            self.inequalities.append(
                Inequality(
                    completeness_coeffs,
                    Fraction(0),
                    f"completeness[{instance.names[i]}]",
                )
            )
            self.inequalities.append(
                Inequality(
                    soundness_coeffs, s * k, f"soundness[{instance.names[i]}]"
                )
            )

    @property
    def n_variables(self) -> int:
        return len(self.facts)

    def variable_of(self, fact: Atom) -> Optional[int]:
        """Index of the variable for *fact* (local names accepted)."""
        return self._index.get(Atom(self.instance.relation, fact.args))

    def satisfied_by(self, assignment: Sequence[int]) -> bool:
        """Does a full 0/1 assignment satisfy every inequality?"""
        return all(ineq.satisfied_by(assignment) for ineq in self.inequalities)

    def _check_size(self) -> None:
        if self.n_variables > MAX_BRUTE_FORCE_VARIABLES:
            raise DomainTooLargeError(
                f"brute-force enumeration over {self.n_variables} variables "
                f"(> {MAX_BRUTE_FORCE_VARIABLES}); use BlockCounter instead"
            )

    def solutions(self) -> Iterator[Tuple[int, ...]]:
        """All satisfying 0/1 assignments, by exhaustive enumeration."""
        self._check_size()
        for assignment in product((0, 1), repeat=self.n_variables):
            if self.satisfied_by(assignment):
                yield assignment

    def solution_databases(self) -> Iterator[GlobalDatabase]:
        """Solutions as global databases (the possible worlds)."""
        for assignment in self.solutions():
            yield GlobalDatabase(
                f for f, x in zip(self.facts, assignment) if x
            )

    def count_solutions(self, fixed: Dict[Atom, int] = None) -> int:
        """``N_sol(Γ)`` (or of Γ with some variables substituted).

        *fixed* maps facts to forced values, implementing the paper's
        ``Γ[x_p/1]`` notation.
        """
        self._check_size()
        forced: Dict[int, int] = {}
        if fixed:
            for fact, value in fixed.items():
                index = self.variable_of(fact)
                if index is None:
                    if value:
                        return 0  # forcing a fact outside the fact space: impossible
                    continue
                forced[index] = 1 if value else 0
        free = [j for j in range(self.n_variables) if j not in forced]
        count = 0
        assignment = [0] * self.n_variables
        for index, value in forced.items():
            assignment[index] = value
        for combo in product((0, 1), repeat=len(free)):
            for j, value in zip(free, combo):
                assignment[j] = value
            if self.satisfied_by(assignment):
                count += 1
        return count

    def confidence(self, fact: Atom) -> Fraction:
        """``N_sol(Γ[x_p/1]) / N_sol(Γ)`` by brute force (oracle method)."""
        from repro.exceptions import InconsistentCollectionError

        denominator = self.count_solutions()
        if denominator == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        numerator = self.count_solutions({fact: 1})
        return Fraction(numerator, denominator)
