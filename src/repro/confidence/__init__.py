"""Probabilistic query-answering semantics (Section 5)."""

from repro.confidence.answers import (
    QueryAnswer,
    answer_query,
    certain_answer,
    certain_answer_lower_bound,
    estimate_answer_confidences,
    possible_answer,
    query_confidence,
)
from repro.confidence.base_facts import (
    anonymous_fact_confidence,
    certain_facts,
    covered_fact_confidences,
    enumeration_confidences,
    fact_confidence,
    plausible_facts,
)
from repro.confidence.blocks import BlockCounter, IdentityInstance, SignatureBlock
from repro.confidence.engine import (
    ChunkedExecutor,
    ConfidenceEngine,
    EngineStats,
    LRUMemo,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    shared_memo,
)
from repro.confidence.exact_calculus import ExactCalculus, event_probability
from repro.confidence.linear_system import GammaSystem, Inequality
from repro.confidence.montecarlo import WorldSampler, rejection_sample_worlds
from repro.confidence.query_conf import (
    base_confidences_from_facts,
    oplus,
    propagate,
    propagate_facts,
)
from repro.confidence.statistics import (
    answer_cardinality_bounds,
    expected_answer_cardinality,
    expected_base_size,
    world_size_distribution,
)
from repro.confidence.worlds import (
    count_possible_worlds,
    fact_space,
    is_consistent_over,
    possible_worlds,
    possible_worlds_identity,
)

__all__ = [
    "IdentityInstance",
    "SignatureBlock",
    "BlockCounter",
    "ConfidenceEngine",
    "EngineStats",
    "LRUMemo",
    "SerialExecutor",
    "ProcessExecutor",
    "ChunkedExecutor",
    "make_executor",
    "shared_memo",
    "ExactCalculus",
    "event_probability",
    "GammaSystem",
    "Inequality",
    "WorldSampler",
    "rejection_sample_worlds",
    "possible_worlds",
    "possible_worlds_identity",
    "count_possible_worlds",
    "is_consistent_over",
    "fact_space",
    "fact_confidence",
    "covered_fact_confidences",
    "anonymous_fact_confidence",
    "enumeration_confidences",
    "certain_facts",
    "plausible_facts",
    "QueryAnswer",
    "answer_query",
    "certain_answer",
    "possible_answer",
    "query_confidence",
    "estimate_answer_confidences",
    "certain_answer_lower_bound",
    "oplus",
    "propagate",
    "propagate_facts",
    "base_confidences_from_facts",
    "expected_base_size",
    "world_size_distribution",
    "expected_answer_cardinality",
    "answer_cardinality_bounds",
]
