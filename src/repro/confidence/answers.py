"""Certain and possible answers, and possible-worlds query confidence (§5).

* ``Q_*(S) = ∩_{D ∈ poss(S)} Q(D)`` — the certain answer;
* ``Q^*(S) = ∪_{D ∈ poss(S)} Q(D)`` — the possible answer;
* ``confidence_Q(t) = Pr(t ∈ Q(D) | D ∈ poss(S))`` — per-tuple confidence.

Queries may be conjunctive queries (facts over ``ans``) or relational-algebra
trees (rows). Worlds are enumerated (arbitrary views, small domains) or
sampled exactly (identity views, via :class:`WorldSampler`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple, Union

from repro.exceptions import InconsistentCollectionError
from repro.model.atoms import Atom
from repro.model.database import GlobalDatabase
from repro.queries.conjunctive import ConjunctiveQuery
from repro.algebra.ast import AlgebraQuery, Row
from repro.sources.collection import SourceCollection
from repro.confidence.worlds import possible_worlds

Query = Union[ConjunctiveQuery, AlgebraQuery]
Answer = Union[Atom, Row]


def _apply(query: Query, world: GlobalDatabase) -> FrozenSet[Answer]:
    """One world's answer set, through the compiled-plan pipeline.

    Per-world evaluation is the hot loop of possible-worlds semantics: the
    same query runs over thousands of worlds, and re-enumerated worlds with
    equal content share one cached data source (scan rows + join indexes).
    Imported lazily — ``repro.plan`` itself depends on
    ``repro.confidence.engine.memo`` for its plan cache.
    """
    from repro.plan import evaluate as plan_evaluate

    if isinstance(query, ConjunctiveQuery):
        return plan_evaluate(query, world)
    return query.evaluate(world)


def _worlds(
    collection: SourceCollection,
    domain: Iterable,
    worlds: Optional[Iterable[GlobalDatabase]],
) -> Iterator[GlobalDatabase]:
    if worlds is not None:
        return iter(worlds)
    return possible_worlds(collection, domain)


class QueryAnswer:
    """Certain answer, possible answer, and per-tuple confidences of a query."""

    __slots__ = ("certain", "possible", "confidences", "world_count")

    def __init__(
        self,
        certain: FrozenSet[Answer],
        possible: FrozenSet[Answer],
        confidences: Dict[Answer, Fraction],
        world_count: int,
    ):
        self.certain = certain
        self.possible = possible
        self.confidences = confidences
        self.world_count = world_count

    def ranked(self) -> Tuple[Tuple[Answer, Fraction], ...]:
        """Possible answers sorted by decreasing confidence."""
        return tuple(
            sorted(self.confidences.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        )

    def __repr__(self) -> str:
        return (
            f"QueryAnswer(certain={len(self.certain)}, "
            f"possible={len(self.possible)}, worlds={self.world_count})"
        )


def answer_query(
    query: Query,
    collection: SourceCollection,
    domain: Iterable,
    worlds: Optional[Iterable[GlobalDatabase]] = None,
    apply: Optional[Callable[[Query, GlobalDatabase], FrozenSet[Answer]]] = None,
) -> QueryAnswer:
    """Evaluate a query under possible-worlds semantics.

    *worlds* may supply a pre-enumerated (or exactly sampled) collection of
    worlds; otherwise poss(S) is enumerated over the finite fact space of
    sch(S) × *domain*. *apply* overrides the per-world evaluator — the seam
    the CLI's ``--shards`` uses to route every world through scatter-gather
    execution (:func:`repro.shard.evaluate_sharded`); any override must be
    answer-equivalent to the plan pipeline.
    """
    evaluator = apply if apply is not None else _apply
    counts: Dict[Answer, int] = {}
    certain: Optional[set] = None
    total = 0
    for world in _worlds(collection, domain, worlds):
        total += 1
        result = evaluator(query, world)
        for answer in result:
            counts[answer] = counts.get(answer, 0) + 1
        if certain is None:
            certain = set(result)
        else:
            certain &= result
    if total == 0:
        raise InconsistentCollectionError(
            "collection admits no possible database over this domain"
        )
    confidences = {a: Fraction(c, total) for a, c in counts.items()}
    return QueryAnswer(
        certain=frozenset(certain or ()),
        possible=frozenset(counts),
        confidences=confidences,
        world_count=total,
    )


def certain_answer(
    query: Query,
    collection: SourceCollection,
    domain: Iterable,
    worlds: Optional[Iterable[GlobalDatabase]] = None,
) -> FrozenSet[Answer]:
    """``Q_*(S)`` — facts present in the answer over every possible world."""
    return answer_query(query, collection, domain, worlds=worlds).certain


def possible_answer(
    query: Query,
    collection: SourceCollection,
    domain: Iterable,
    worlds: Optional[Iterable[GlobalDatabase]] = None,
) -> FrozenSet[Answer]:
    """``Q^*(S)`` — facts present in the answer over some possible world."""
    return answer_query(query, collection, domain, worlds=worlds).possible


def query_confidence(
    query: Query,
    collection: SourceCollection,
    domain: Iterable,
    answer: Answer,
    worlds: Optional[Iterable[GlobalDatabase]] = None,
) -> Fraction:
    """``confidence_Q(t)`` for one answer tuple, by world counting."""
    return answer_query(query, collection, domain, worlds=worlds).confidences.get(
        answer, Fraction(0)
    )


def certain_answer_lower_bound(
    query: Query,
    collection: SourceCollection,
    domain: Iterable,
) -> FrozenSet[Answer]:
    """Certain answers derivable from the *certain base facts* alone.

    Identity-view collections: the facts with confidence 1 form a database
    contained in every possible world, so by monotonicity any (conjunctive
    or σ/π/×/∪-algebra) answer over it belongs to the certain answer —
    a sound under-approximation obtained without enumerating worlds.

    Complementary to the Information-Manifold route: this one *does* see
    facts forced by completeness bounds (they have confidence 1) but cannot
    use existential witnesses from non-identity sound views; IM is the
    mirror image. Both are subsets of the true certain answer.
    """
    from repro.confidence.base_facts import covered_fact_confidences

    confidences = covered_fact_confidences(collection, domain)
    certain_db = GlobalDatabase(
        f for f, confidence in confidences.items() if confidence == 1
    )
    return _apply(query, certain_db)


def estimate_answer_confidences(
    query: Query,
    sampler,
    samples: int,
) -> Dict[Answer, float]:
    """Monte-Carlo answer confidences from an exact world sampler.

    *sampler* is a :class:`~repro.confidence.montecarlo.WorldSampler`;
    the identity-view route to query confidences when enumeration is too
    expensive.
    """
    counts: Dict[Answer, int] = {}
    for _ in range(samples):
        world = sampler.sample()
        for answer in _apply(query, world):
            counts[answer] = counts.get(answer, 0) + 1
    return {a: c / samples for a, c in counts.items()}
