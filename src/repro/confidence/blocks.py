"""Signature-block decomposition for identity-view collections (Section 5.1).

Section 5.1 reduces confidence computation to counting 0/1 integer solutions
of a linear system Γ with one variable per fact in the finite fact space —
"at least in principle", in exponential time. This module supplies the
principled exact algorithm that makes the computation practical, exploiting
the symmetry implicit in the paper's own Example 5.1:

Two facts contained in exactly the same view extensions (the same *membership
signature*) are interchangeable in Γ. Grouping the fact space into signature
blocks B_1..B_g (plus one *anonymous* block for facts outside every
extension), the number of solutions depends only on the per-block occupancy
counts (n_1..n_g, n_0), with weight ``∏_j C(|B_j|, n_j)``. A dynamic program
over blocks, whose state is the per-source sound counts (t_1..t_n) plus the
covered total, sums these weights; the anonymous block is folded in
analytically at the end via partial binomial sums. Example 5.1's closed
forms — e.g. confidence(R(b)) = (2m+2)/(2m+3) — drop out exactly.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SourceError
from repro.model.atoms import Atom
from repro.model.terms import Constant, Variable, as_term
from repro.sources.collection import SourceCollection
from repro.confidence.engine import kernel

#: Backwards-compatible alias (the implementation moved to the engine kernel).
_partial_binomial_sum = kernel.partial_binomial_sum


class SignatureBlock:
    """A maximal set of facts sharing one membership signature."""

    __slots__ = ("signature", "facts")

    def __init__(self, signature: FrozenSet[int], facts: Sequence[Atom]):
        self.signature = signature
        self.facts: Tuple[Atom, ...] = tuple(sorted(facts))

    @property
    def size(self) -> int:
        return len(self.facts)

    def __repr__(self) -> str:
        sig = ",".join(str(i) for i in sorted(self.signature))
        return f"SignatureBlock({{{sig}}}, size={self.size})"


class IdentityInstance:
    """An identity-view collection over a finite domain, in set form.

    All views must be identities over one global relation (the §5.1 /
    Corollary 3.4 setting). Extension facts become *global* facts by renaming
    the local relation to the global one; the fact space is every fact over
    the relation with constants from *domain*.

    >>> from repro.queries import identity_view
    >>> from repro.model import fact
    >>> from repro.sources import SourceDescriptor, SourceCollection
    >>> col = SourceCollection([
    ...     SourceDescriptor(identity_view("V1", "R", 1),
    ...                      [fact("V1", "a"), fact("V1", "b")], 0.5, 0.5),
    ... ])
    >>> inst = IdentityInstance(col, ["a", "b", "c"])
    >>> inst.fact_space_size
    3
    """

    def __init__(self, collection: SourceCollection, domain: Iterable):
        relation = collection.identity_relation()
        if relation is None:
            raise SourceError(
                "IdentityInstance requires all views to be identities over one "
                "global relation (Section 5.1 special case)"
            )
        self.collection = collection
        self.relation = relation
        self.arity = collection.sources[0].view.head.arity
        # The domain is kept as raw values; the boxed Constant tuple is a
        # lazy property. Only *extension* constants are ever interned — the
        # anonymous fact space exists purely as the arithmetic
        # ``|dom|^arity − covered`` below, which is what keeps decomposition
        # cost proportional to the extensions, not the domain.
        self._raw_domain: Tuple = tuple(
            c.value if isinstance(c, (Constant, Variable)) else c
            for c in dict.fromkeys(domain)
        )
        self._domain_boxed: Optional[Tuple[Constant, ...]] = None
        self.fact_space_size = len(self._raw_domain) ** self.arity

        # Interned decomposition: rename each extension fact to the global
        # relation and intern it to a fact ID, accumulating its membership
        # signature as a bitmask (bit i set ⇔ fact ∈ v_i). One dict pass
        # replaces the per-source frozenset membership probes of the boxed
        # algorithm (kept in repro.core.baseline for benchmarks/tests).
        from repro.core.symbols import global_table

        table = global_table()
        rid = table.relation(relation)
        intern_constant = table.constant
        raw_domain_set = frozenset(self._raw_domain)

        # Per-source data, in collection order.
        self.names: List[str] = []
        self.extension_sizes: List[int] = []
        self.completeness_bounds: List[Fraction] = []
        self.soundness_bounds: List[Fraction] = []
        self.min_sound: List[int] = []
        signature_of: Dict[int, int] = {}
        for i, source in enumerate(collection):
            bit = 1 << i
            fids: set = set()
            for f in source.extension:
                values = [a.value for a in f.args]
                if not raw_domain_set.issuperset(values):
                    renamed = Atom(relation, f.args)
                    missing = [
                        a
                        for a in renamed.args
                        if a.value not in raw_domain_set
                    ]
                    raise SourceError(
                        f"extension fact {renamed} uses constants outside the "
                        f"domain: {missing}"
                    )
                fids.add(
                    table.fact(rid, tuple(intern_constant(v) for v in values))
                )
            for fid in fids:
                signature_of[fid] = signature_of.get(fid, 0) | bit
            self.names.append(source.name)
            self.extension_sizes.append(len(fids))
            self.completeness_bounds.append(source.completeness_bound)
            self.soundness_bounds.append(source.soundness_bound)
            self.min_sound.append(source.min_sound_count())

        # Block decomposition of the covered fact space, grouped by bitmask.
        by_mask: Dict[int, List[int]] = {}
        for fid, mask in signature_of.items():
            by_mask.setdefault(mask, []).append(fid)

        from repro.core.adapters import atom_of_fact

        def indices(mask: int) -> Tuple[int, ...]:
            return tuple(i for i in range(len(self.names)) if mask & (1 << i))

        self.blocks: Tuple[SignatureBlock, ...] = tuple(
            SignatureBlock(
                frozenset(indices(mask)),
                [atom_of_fact(table, fid) for fid in fids],
            )
            for mask, fids in sorted(
                by_mask.items(), key=lambda kv: (indices(kv[0]), len(kv[1]))
            )
        )
        self.covered_size = sum(b.size for b in self.blocks)
        self.anonymous_size = self.fact_space_size - self.covered_size

        # Process-local caches (term IDs never cross process boundaries, so
        # none of these survive pickling — see __getstate__).
        self._extensions: Optional[Tuple[FrozenSet[Atom], ...]] = None
        self._fact_block_ids: Optional[Dict[int, int]] = None
        self._domain_set: Optional[FrozenSet] = None

    # -- structure -------------------------------------------------------------

    @property
    def domain(self) -> Tuple[Constant, ...]:
        """The deduplicated domain as boxed constants (boxed lazily).

        Decomposition and counting never need this tuple; it exists for the
        enumeration-style consumers (samplers, the linear-system baseline,
        exact calculus) that iterate the fact space as boxed atoms.
        """
        if self._domain_boxed is None:
            self._domain_boxed = tuple(as_term(v) for v in self._raw_domain)
        return self._domain_boxed

    @property
    def n_sources(self) -> int:
        return len(self.names)

    @property
    def extensions(self) -> Tuple[FrozenSet[Atom], ...]:
        """Per-source global-renamed extensions, as boxed frozensets.

        Rebuilt lazily from the block decomposition (every extension fact is
        covered by construction); the hot paths never touch this.
        """
        if self._extensions is None:
            per_source: List[set] = [set() for _ in self.names]
            for block in self.blocks:
                for i in block.signature:
                    per_source[i].update(block.facts)
            self._extensions = tuple(frozenset(e) for e in per_source)
        return self._extensions

    def _fact_ids(self) -> Dict[int, int]:
        """Lazy fact-ID → block-index map against the process-wide table."""
        if self._fact_block_ids is None:
            from repro.core.adapters import fact_of_atom
            from repro.core.symbols import global_table

            table = global_table()
            self._fact_block_ids = {
                fact_of_atom(table, f): j
                for j, block in enumerate(self.blocks)
                for f in block.facts
            }
        return self._fact_block_ids

    def block_of(self, fact: Atom) -> Optional[int]:
        """Index of the block containing *fact*; ``None`` for anonymous facts.

        Accepts both global facts over the instance relation and local facts
        (same argument tuple, any local name). The probe interns the fact and
        hits the ID index — no boxed atom is rebuilt.
        """
        from repro.core.symbols import global_table

        index = self._fact_ids()
        table = global_table()
        rid = table.find_relation(self.relation)
        if rid is None:
            return None
        args = []
        for a in fact.args:
            cid = table.find_constant(a.value)
            if cid is None:
                return None
            args.append(cid)
        fid = table.find_fact(rid, tuple(args))
        if fid is None:
            return None
        return index.get(fid)

    def in_fact_space(self, fact: Atom) -> bool:
        """Is *fact* (as a global fact) part of the finite fact space?"""
        if len(fact.args) != self.arity:
            return False
        if self._domain_set is None:
            self._domain_set = frozenset(self._raw_domain)
        domain_set = self._domain_set
        for a in fact.args:
            if not isinstance(a, Constant) or a.value not in domain_set:
                return False
        return True

    # -- pickling (IDs are process-local; ship only boxed state) ---------------

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_extensions"] = None
        state["_fact_block_ids"] = None
        state["_domain_set"] = None
        state["_domain_boxed"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- constraint predicates ----------------------------------------------------

    def state_is_final_feasible(self, sound_counts: Sequence[int], total: int) -> bool:
        """Do (t_1..t_n, |D|) satisfy every soundness and completeness bound?"""
        for i in range(self.n_sources):
            if sound_counts[i] < self.min_sound[i]:
                return False
            if sound_counts[i] < self.completeness_bounds[i] * total:
                return False
        return True

    def max_total_for(self, sound_counts: Sequence[int]) -> Optional[int]:
        """The largest |D| the completeness bounds allow for given t_i.

        ``None`` means unbounded (every completeness bound is zero).
        """
        cap: Optional[int] = None
        for i in range(self.n_sources):
            c = self.completeness_bounds[i]
            if c > 0:
                limit = int(Fraction(sound_counts[i]) / c)
                cap = limit if cap is None else min(cap, limit)
        return cap


class BlockCounter:
    """Counts possible worlds of an :class:`IdentityInstance` exactly.

    The dynamic program sweeps signature blocks; a state is the tuple of
    per-source sound counts plus the covered-fact total, mapped to the total
    combinatorial weight of ways to reach it. The anonymous block (facts
    outside every extension) is folded in at the end with partial binomial
    sums, so its size never enters the state space — which is what keeps
    Example 5.1 polynomial in m.

    The DP itself lives in :mod:`repro.confidence.engine.kernel` (pure
    functions over a :class:`~repro.confidence.engine.kernel.CountingSpec`);
    this class is the fact-level serial facade. The parallel, memoized route
    to the same numbers is
    :class:`~repro.confidence.engine.ConfidenceEngine`.
    """

    def __init__(self, instance: IdentityInstance):
        self.instance = instance
        self.spec = kernel.spec_of(instance)
        self._world_count: Optional[int] = None

    # -- the DP -----------------------------------------------------------------

    def _sweep(
        self,
        skip_one_of_block: Optional[int] = None,
        initial_sound: Optional[Sequence[int]] = None,
        initial_total: int = 0,
    ) -> Dict[Tuple[Tuple[int, ...], int], int]:
        """Run the block DP with at most one skipped fact (common case)."""
        skips = {} if skip_one_of_block is None else {skip_one_of_block: 1}
        return self._sweep_multi(skips, initial_sound, initial_total)

    def _sweep_multi(
        self,
        skip_counts: Dict[int, int],
        initial_sound: Optional[Sequence[int]] = None,
        initial_total: int = 0,
    ) -> Dict[Tuple[Tuple[int, ...], int], int]:
        """Run the block DP (kernel delegation).

        *skip_counts* reduces block sizes (facts forced in or out of the
        world are no longer free choices). *initial_sound*/*initial_total*
        seed the state with the contribution of forced-in facts.
        """
        spec = self.spec
        sizes = list(spec.sizes)
        for j, count in skip_counts.items():
            sizes[j] -= count
            if sizes[j] < 0:
                return {}
        return kernel.sweep(
            spec.signatures, sizes, spec.n_sources, initial_sound, initial_total
        )

    def _finish(
        self,
        states: Dict[Tuple[Tuple[int, ...], int], int],
        anonymous_size: int,
    ) -> int:
        """Fold the anonymous block into swept states and total the count."""
        spec = self.spec
        return kernel.finish(
            states, spec.min_sound, spec.completeness, anonymous_size
        )

    # -- public API ----------------------------------------------------------------

    def count_worlds(self) -> int:
        """``|poss(S)|`` restricted to the finite fact space (``N_sol(Γ)``).

        Memoized — it is the denominator of every confidence query.
        """
        if self._world_count is None:
            self._world_count = kernel.count_worlds(self.spec)
        return self._world_count

    # -- ranked access ------------------------------------------------------------

    def block_confidences(self) -> Dict[int, Fraction]:
        """Confidence per signature block (all its facts share the value)."""
        from repro.exceptions import InconsistentCollectionError

        denominator = self.count_worlds()
        if denominator == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        out: Dict[int, Fraction] = {}
        for j, block in enumerate(self.instance.blocks):
            if block.facts:
                out[j] = Fraction(
                    self.count_worlds_containing(block.facts[0]), denominator
                )
        return out

    def top_k_facts(self, k: int) -> List[Tuple[Atom, Fraction]]:
        """The k most-confident covered facts, computed per block.

        One counting pass per block (facts in a block are interchangeable),
        so the cost is independent of k and of block sizes.
        """
        if k <= 0:
            return []
        per_block = self.block_confidences()
        ranked_blocks = sorted(
            per_block.items(), key=lambda kv: (-kv[1], kv[0])
        )
        out: List[Tuple[Atom, Fraction]] = []
        for j, confidence in ranked_blocks:
            for f in self.instance.blocks[j].facts:
                out.append((f, confidence))
                if len(out) == k:
                    return out
        return out

    def count_worlds_containing(self, fact: Atom) -> int:
        """``N_sol(Γ[x_fact / 1])``: worlds that contain *fact*."""
        return self.count_worlds_containing_all([fact])

    def count_worlds_containing_all(self, facts: Iterable[Atom]) -> int:
        """Worlds containing *every* fact in *facts* (joint count).

        Generalizes the paper's ``Γ[x_p/1]`` to fixing several variables at
        once; each forced fact seeds the DP and shrinks its block. Duplicate
        facts are collapsed. The basis for joint and conditional
        confidences.
        """
        inst = self.instance
        forced = {Atom(inst.relation, f.args) for f in facts}
        if not forced:
            return self.count_worlds()
        per_block: Dict[Optional[int], int] = {}
        for f in forced:
            if not inst.in_fact_space(f):
                return 0
            per_block[inst.block_of(f)] = per_block.get(inst.block_of(f), 0) + 1
        problem = kernel.reduce_spec(self.spec, forced=per_block)
        return kernel.solve(problem)[0]

    def count_worlds_excluding(self, fact: Atom) -> int:
        """Worlds that do *not* contain *fact* (``N_sol(Γ[x_fact / 0])``)."""
        inst = self.instance
        if not inst.in_fact_space(fact):
            return self.count_worlds()
        problem = kernel.reduce_spec(
            self.spec, excluded={inst.block_of(fact): 1}
        )
        return kernel.solve(problem)[0]

    def confidence(self, fact: Atom) -> Fraction:
        """``confidence(t) = N_sol(Γ[x_t/1]) / N_sol(Γ)`` (Section 5.1).

        Raises :class:`~repro.exceptions.InconsistentCollectionError` when the
        collection admits no possible world over the fact space.
        """
        from repro.exceptions import InconsistentCollectionError

        denominator = self.count_worlds()
        if denominator == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        return Fraction(self.count_worlds_containing(fact), denominator)

    def joint_confidence(self, facts: Iterable[Atom]) -> Fraction:
        """``Pr(all facts ∈ D | D ∈ poss(S))``."""
        from repro.exceptions import InconsistentCollectionError

        denominator = self.count_worlds()
        if denominator == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        return Fraction(self.count_worlds_containing_all(facts), denominator)

    def conditional_confidence(self, fact: Atom, given: Iterable[Atom]) -> Fraction:
        """``Pr(fact ∈ D | given ⊆ D, D ∈ poss(S))``.

        Raises :class:`~repro.exceptions.InconsistentCollectionError` when no
        possible world contains all the *given* facts.
        """
        from repro.exceptions import InconsistentCollectionError

        given = list(given)
        denominator = self.count_worlds_containing_all(given)
        if denominator == 0:
            raise InconsistentCollectionError(
                "no possible world contains all the conditioning facts"
            )
        numerator = self.count_worlds_containing_all(list(given) + [fact])
        return Fraction(numerator, denominator)

    def covariance(self, left: Atom, right: Atom) -> Fraction:
        """``Pr(both) − Pr(left)·Pr(right)``: the membership correlation the
        Definition 5.1 calculus ignores (zero means independent).
        """
        return self.joint_confidence([left, right]) - (
            self.confidence(left) * self.confidence(right)
        )

    def world_size_distribution(self) -> Dict[int, int]:
        """Number of possible worlds per database size |D|.

        Exact, via the same DP: swept states carry the covered total, and
        the anonymous block contributes ``C(N₀, j)`` worlds of j extra
        facts. Summing the distribution reproduces ``count_worlds()``; its
        mean equals Σ_t confidence(t) (linearity of expectation) — both are
        asserted in the test suite.
        """
        inst = self.instance
        states = self._sweep()
        distribution: Dict[int, int] = {}
        for (sound, covered_total), weight in states.items():
            if any(
                sound[i] < inst.min_sound[i] for i in range(inst.n_sources)
            ):
                continue
            cap = inst.max_total_for(sound)
            if cap is None:
                budget = inst.anonymous_size
            else:
                budget = cap - covered_total
                if budget < 0:
                    continue
                budget = min(budget, inst.anonymous_size)
            for extra in range(budget + 1):
                size = covered_total + extra
                distribution[size] = distribution.get(size, 0) + (
                    weight * math.comb(inst.anonymous_size, extra)
                )
        return distribution

    def expected_world_size(self) -> Fraction:
        """``E[|D|]`` over a uniformly random possible world."""
        from repro.exceptions import InconsistentCollectionError

        distribution = self.world_size_distribution()
        total = sum(distribution.values())
        if total == 0:
            raise InconsistentCollectionError(
                "collection admits no possible database over this domain"
            )
        weighted = sum(size * count for size, count in distribution.items())
        return Fraction(weighted, total)

    def is_consistent(self) -> bool:
        """Non-emptiness of poss(S) over the finite fact space."""
        return self.count_worlds() > 0
