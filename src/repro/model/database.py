"""Global databases (Section 2.1).

A global database ``D`` over a schema is a finite set of facts. The class is
immutable (so databases can be members of sets of possible worlds) and keeps
a per-relation index used by the query evaluator.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Set, Tuple

from repro.exceptions import NotGroundError
from repro.model.atoms import Atom
from repro.model.schema import GlobalSchema, schema_of_atoms
from repro.model.terms import Constant


class GlobalDatabase:
    """An immutable finite set of facts.

    >>> from repro.model.atoms import fact
    >>> db = GlobalDatabase([fact("R", 1), fact("R", 2), fact("S", 1, 2)])
    >>> len(db)
    3
    >>> sorted(str(f) for f in db.extension("R"))
    ['R(1)', 'R(2)']
    """

    __slots__ = ("_facts", "_by_relation", "_hash", "_core")

    def __init__(self, facts: Iterable[Atom] = ()):
        collected = frozenset(facts)
        for f in collected:
            if not f.is_ground():
                raise NotGroundError(f"database may only contain facts, got {f}")
        self._facts: FrozenSet[Atom] = collected
        by_relation: Dict[str, Set[Atom]] = {}
        for f in collected:
            by_relation.setdefault(f.relation, set()).add(f)
        self._by_relation = {
            name: frozenset(facts_) for name, facts_ in by_relation.items()
        }
        self._hash = hash(self._facts)
        self._core = None

    # -- set interface -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __contains__(self, f: Atom) -> bool:
        return f in self._facts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GlobalDatabase) and self._facts == other._facts

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "GlobalDatabase") -> bool:
        return self._facts <= other._facts

    def __lt__(self, other: "GlobalDatabase") -> bool:
        return self._facts < other._facts

    def facts(self) -> FrozenSet[Atom]:
        """The underlying frozen set of facts."""
        return self._facts

    # -- interned core -------------------------------------------------------

    def core(self):
        """The interned :class:`~repro.core.factset.IFactSet` for this database.

        Computed once against the process-wide symbol table and cached. The
        cache never crosses process boundaries (term IDs are process-local),
        so it is dropped on pickling.
        """
        if self._core is None:
            from repro.core.adapters import to_core_database
            from repro.core.symbols import global_table

            self._core = to_core_database(global_table(), self)
        return self._core

    @classmethod
    def from_core(cls, facts) -> "GlobalDatabase":
        """Rebuild a boxed database from an :class:`IFactSet`, keeping the
        interned form as the pre-populated :meth:`core` cache.
        """
        from repro.core.adapters import from_core_database

        db = from_core_database(facts.table, facts)
        db._core = facts
        return db

    def __getstate__(self):
        return (self._facts,)

    def __setstate__(self, state):
        self.__init__(state[0])

    # -- relational access ---------------------------------------------------

    def extension(self, relation: str) -> FrozenSet[Atom]:
        """``D(R)``: all facts over relation *relation* (Section 2.1)."""
        return self._by_relation.get(relation, frozenset())

    def relations(self) -> Tuple[str, ...]:
        """Relation names with a non-empty extension, sorted."""
        return tuple(sorted(self._by_relation))

    def tuples(self, relation: str) -> Set[Tuple]:
        """Extension of *relation* as raw Python value tuples."""
        return {tuple(c.value for c in f.args) for f in self.extension(relation)}

    def constants(self) -> Set[Constant]:
        """The active domain: every constant appearing in some fact."""
        out: Set[Constant] = set()
        for f in self._facts:
            out.update(f.args)
        return out

    def schema(self) -> GlobalSchema:
        """The schema inferred from the stored facts."""
        return schema_of_atoms(self._facts)

    # -- algebraic combinations ----------------------------------------------

    def union(self, other: "GlobalDatabase") -> "GlobalDatabase":
        """Set union of two databases."""
        return GlobalDatabase(self._facts | other._facts)

    def intersection(self, other: "GlobalDatabase") -> "GlobalDatabase":
        """Set intersection of two databases."""
        return GlobalDatabase(self._facts & other._facts)

    def difference(self, other: "GlobalDatabase") -> "GlobalDatabase":
        """Set difference of two databases."""
        return GlobalDatabase(self._facts - other._facts)

    def with_facts(self, extra: Iterable[Atom]) -> "GlobalDatabase":
        """A new database with *extra* facts added."""
        return GlobalDatabase(self._facts | frozenset(extra))

    def without_facts(self, removed: Iterable[Atom]) -> "GlobalDatabase":
        """A new database with *removed* facts dropped."""
        return GlobalDatabase(self._facts - frozenset(removed))

    def restrict_to(self, relations: Iterable[str]) -> "GlobalDatabase":
        """Only the facts over the given relation names."""
        wanted = set(relations)
        return GlobalDatabase(f for f in self._facts if f.relation in wanted)

    def __repr__(self) -> str:
        shown = ", ".join(str(f) for f in sorted(self._facts))
        return f"GlobalDatabase({{{shown}}})"


EMPTY_DATABASE = GlobalDatabase()
