"""Global schemas (Section 2.1).

A global schema is a finite set of relation names, each with a fixed arity.
The schema object validates atoms/facts against declared arities and supplies
the fact-space enumeration needed by the finite-domain possible-world
machinery of Sections 4 and 5.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.exceptions import ArityError, ModelError
from repro.model.atoms import Atom
from repro.model.terms import Constant


class RelationSchema:
    """A single relation name with its arity and optional attribute names."""

    __slots__ = ("name", "arity", "attributes")

    def __init__(self, name: str, arity: int, attributes: Sequence[str] = None):
        if not isinstance(name, str) or not name:
            raise ModelError(f"relation name must be a non-empty string: {name!r}")
        if arity < 0:
            raise ModelError(f"arity must be non-negative: {arity}")
        if attributes is not None and len(attributes) != arity:
            raise ModelError(
                f"relation {name}: {len(attributes)} attribute names for arity {arity}"
            )
        self.name = name
        self.arity = arity
        self.attributes: Tuple[str, ...] = (
            tuple(attributes) if attributes is not None
            else tuple(f"a{i}" for i in range(arity))
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.arity == other.arity
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity))

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {self.arity})"


class GlobalSchema:
    """A set of relation names with arities; validates atoms against them.

    >>> schema = GlobalSchema({"R": 2, "S": 1})
    >>> schema.arity("R")
    2
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, int] = None):
        self._relations: Dict[str, RelationSchema] = {}
        if relations:
            for name, arity in relations.items():
                self.add(name, arity)

    def add(self, name: str, arity: int, attributes: Sequence[str] = None) -> RelationSchema:
        """Declare a relation; re-declaring with a different arity raises."""
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise ArityError(
                    f"relation {name} re-declared with arity {arity}, was {existing.arity}"
                )
            return existing
        rel = RelationSchema(name, arity, attributes)
        self._relations[name] = rel
        return rel

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GlobalSchema) and self._relations == other._relations

    def relation(self, name: str) -> RelationSchema:
        """The :class:`RelationSchema` for *name*; raises ``ModelError`` if absent."""
        try:
            return self._relations[name]
        except KeyError:
            raise ModelError(f"unknown relation: {name}") from None

    def arity(self, name: str) -> int:
        """Declared arity of relation *name*."""
        return self.relation(name).arity

    def validate_atom(self, atom: Atom) -> None:
        """Raise :class:`ArityError` when *atom* disagrees with the schema."""
        declared = self.arity(atom.relation)
        if atom.arity != declared:
            raise ArityError(
                f"atom {atom} has arity {atom.arity}, schema declares {declared}"
            )

    def max_arity(self) -> int:
        """The largest declared arity (0 for an empty schema)."""
        return max((r.arity for r in self._relations.values()), default=0)

    def merged(self, other: "GlobalSchema") -> "GlobalSchema":
        """A new schema containing the relations of both operands."""
        merged = GlobalSchema()
        for rel in self._relations.values():
            merged.add(rel.name, rel.arity, rel.attributes)
        for rel in other._relations.values():
            merged.add(rel.name, rel.arity, rel.attributes)
        return merged

    def fact_space(self, domain: Iterable) -> Iterator[Atom]:
        """Enumerate every fact over the schema with constants from *domain*.

        This is the enumeration ``t_1, ..., t_N`` of Section 5.1 (with
        ``N = Σ_R |dom|^arity(R)``). Facts are produced relation by relation
        in lexicographic argument order, giving a deterministic indexing.
        """
        constants = [c if isinstance(c, Constant) else Constant(c) for c in domain]
        for name in sorted(self._relations):
            arity = self._relations[name].arity
            for combo in product(constants, repeat=arity):
                yield Atom(name, combo)

    def fact_space_size(self, domain_size: int) -> int:
        """``Σ_R domain_size**arity(R)`` without enumerating."""
        return sum(domain_size ** r.arity for r in self._relations.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}/{self._relations[n].arity}" for n in sorted(self._relations))
        return f"GlobalSchema({{{inner}}})"


def schema_of_atoms(atoms: Iterable[Atom]) -> GlobalSchema:
    """Infer a :class:`GlobalSchema` from the atoms' names and arities.

    Raises :class:`ArityError` when one relation name is used at two arities.
    """
    schema = GlobalSchema()
    for atom in atoms:
        schema.add(atom.relation, atom.arity)
    return schema
