"""Relational model substrate (paper Section 2.1).

Terms, atoms, facts, schemas, global databases, valuations and substitutions
— the vocabulary every other subsystem builds on.
"""

from repro.model.atoms import Atom, atom, fact
from repro.model.database import EMPTY_DATABASE, GlobalDatabase
from repro.model.schema import GlobalSchema, RelationSchema, schema_of_atoms
from repro.model.terms import (
    Constant,
    FreshConstantFactory,
    FreshVariableFactory,
    Term,
    Variable,
    as_term,
    constants_in,
    is_constant,
    is_variable,
    variables_in,
)
from repro.model.valuation import (
    Substitution,
    Valuation,
    compatible,
    match_atom,
    unify_atoms,
)

__all__ = [
    "Atom",
    "atom",
    "fact",
    "GlobalDatabase",
    "EMPTY_DATABASE",
    "GlobalSchema",
    "RelationSchema",
    "schema_of_atoms",
    "Constant",
    "Variable",
    "Term",
    "as_term",
    "is_constant",
    "is_variable",
    "constants_in",
    "variables_in",
    "FreshConstantFactory",
    "FreshVariableFactory",
    "Substitution",
    "Valuation",
    "compatible",
    "match_atom",
    "unify_atoms",
]
