"""Terms of the relational model: constants and variables.

The paper (Section 2.1) fixes a set ``dom`` of constants and a set ``var`` of
variables. We model constants as immutable wrappers around hashable Python
values and variables as named symbols. Both are interned-friendly frozen
objects so they can live in sets, dict keys, and tableaux.
"""

from __future__ import annotations

from typing import Any, Tuple, Union

from repro.exceptions import ModelError


class Constant:
    """A constant from ``dom``, wrapping an arbitrary hashable Python value.

    >>> Constant(1900) == Constant(1900)
    True
    >>> Constant("Canada")
    Constant('Canada')
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: Any):
        try:
            self._hash = hash(("Constant", value))
        except TypeError as exc:
            raise ModelError(f"constant value must be hashable: {value!r}") from exc
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return _sort_key(self.value) < _sort_key(other.value)


class Variable:
    """A variable from ``var``, identified by its name.

    >>> Variable("x") == Variable("x")
    True
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ModelError(f"variable name must be a non-empty string: {name!r}")
        self.name = name
        self._hash = hash(("Variable", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name


Term = Union[Constant, Variable]


def _sort_key(value: Any) -> Tuple[str, str]:
    """A total order over heterogeneous constant values (type name, repr)."""
    return (type(value).__name__, repr(value))


def term_sort_key(term: Term) -> Tuple[int, Any]:
    """Total order over terms: constants first, then variables by name."""
    if isinstance(term, Constant):
        return (0, _sort_key(term.value))
    return (1, term.name)


def is_constant(term: Term) -> bool:
    """True when *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_variable(term: Term) -> bool:
    """True when *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def as_term(value: Any) -> Term:
    """Coerce *value* to a term.

    Existing terms pass through unchanged; any other value is wrapped in a
    :class:`Constant`. Strings are **not** auto-interpreted as variables —
    use :class:`Variable` (or the parser in :mod:`repro.queries.parser`,
    where lowercase identifiers denote variables) when a variable is meant.
    """
    if isinstance(value, (Constant, Variable)):
        return value
    return Constant(value)


def constants_in(terms) -> set:
    """The set of constants occurring in an iterable of terms."""
    return {t for t in terms if isinstance(t, Constant)}


def variables_in(terms) -> set:
    """The set of variables occurring in an iterable of terms."""
    return {t for t in terms if isinstance(t, Variable)}


class FreshVariableFactory:
    """Generates variables guaranteed fresh with respect to a seen set.

    Used when standardizing queries apart and when building the cardinality
    tableaux V^U(S_i) of Section 4, which need rows of fresh variables
    x^i_{s,1} ... x^i_{s,l}.
    """

    __slots__ = ("_prefix", "_counter", "_taken")

    def __init__(self, taken=(), prefix: str = "_v"):
        self._prefix = prefix
        self._counter = 0
        self._taken = {v.name for v in taken}

    def reserve(self, variables) -> None:
        """Mark additional variable names as taken."""
        self._taken.update(v.name for v in variables)

    def fresh(self) -> Variable:
        """Return a variable whose name has never been seen or produced."""
        while True:
            self._counter += 1
            name = f"{self._prefix}{self._counter}"
            if name not in self._taken:
                self._taken.add(name)
                return Variable(name)


class FreshConstantFactory:
    """Generates constants outside every value seen so far.

    Freezing a tableau (Section 4) replaces each variable with a distinct
    fresh constant; these constants must not collide with ``dom`` values
    already present in view extensions.
    """

    __slots__ = ("_prefix", "_counter", "_taken")

    def __init__(self, taken=(), prefix: str = "_c"):
        self._prefix = prefix
        self._counter = 0
        self._taken = {c.value for c in taken if isinstance(c, Constant)}

    def fresh(self) -> Constant:
        """Return a constant whose value has never been seen or produced."""
        while True:
            self._counter += 1
            value = f"{self._prefix}{self._counter}"
            if value not in self._taken:
                self._taken.add(value)
                return Constant(value)
