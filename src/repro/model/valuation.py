"""Valuations and substitutions (Sections 2.1 and 4).

* A **substitution** is a finite map ``{x_1/e_1, ..., x_p/e_p}`` from
  variables to terms (constants *or* variables).
* A **valuation** is a partial map from ``var ∪ dom`` to ``dom`` that is the
  identity on ``dom`` — i.e. a substitution whose images are all constants.
* A valuation σ is **compatible** with a substitution θ = {x_i/e_i} when
  ``σ(x_i) = σ(e_i)`` for every binding (Section 4); this drives constraint
  satisfaction in database templates.

Both are immutable mappings with dict-like access. ``substitute`` on atoms and
tableaux accepts either.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.exceptions import ModelError
from repro.model.atoms import Atom
from repro.model.terms import Constant, Term, Variable, as_term


class Substitution:
    """An immutable finite map from variables to terms.

    >>> theta = Substitution({Variable("x"): Constant(1)})
    >>> theta[Variable("x")]
    Constant(1)
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping: Mapping[Variable, Term] = None):
        items: Dict[Variable, Term] = {}
        if mapping:
            for var, term in mapping.items():
                if not isinstance(var, Variable):
                    raise ModelError(f"substitution keys must be variables: {var!r}")
                items[var] = as_term(term)
        self._map = items
        self._hash = hash(frozenset(items.items()))

    # -- mapping interface --------------------------------------------------

    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def get(self, term: Term, default: Optional[Term] = None) -> Optional[Term]:
        """Image of *term*; constants map to themselves."""
        if isinstance(term, Constant):
            return term
        return self._map.get(term, default)

    def __contains__(self, var: Variable) -> bool:
        return var in self._map

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def items(self) -> Iterable[Tuple[Variable, Term]]:
        return self._map.items()

    def domain(self) -> frozenset:
        """The variables this substitution binds."""
        return frozenset(self._map)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and self._map == other._map

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}/{t}" for v, t in sorted(
            self._map.items(), key=lambda kv: kv[0].name))
        return f"{{{inner}}}"

    # -- operations -----------------------------------------------------------

    def apply(self, atom: Atom) -> Atom:
        """Apply the substitution to an atom."""
        return atom.substitute(self)

    def apply_all(self, atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
        """Apply to several atoms, preserving order."""
        return tuple(a.substitute(self) for a in atoms)

    def compose(self, other: "Substitution") -> "Substitution":
        """``(self ∘ other)``: apply *self* first, then *other* to the images.

        Bindings of *other* on variables untouched by *self* are kept.
        """
        merged: Dict[Variable, Term] = {}
        for var, term in self._map.items():
            merged[var] = other.get(term, term) if isinstance(term, Variable) else term
        for var, term in other._map.items():
            merged.setdefault(var, term)
        return Substitution(merged)

    def extended(self, var: Variable, term: Term) -> "Substitution":
        """A new substitution with one extra binding."""
        merged = dict(self._map)
        merged[var] = as_term(term)
        return Substitution(merged)

    def is_valuation(self) -> bool:
        """True when every image is a constant."""
        return all(isinstance(t, Constant) for t in self._map.values())


class Valuation(Substitution):
    """A substitution whose images are all constants (paper's valuations).

    Valuations extend to ``dom`` by identity: ``get`` on a constant returns
    the constant itself, matching "partial mapping ... identity on dom".
    """

    def __init__(self, mapping: Mapping[Variable, Constant] = None):
        if mapping:
            for var, const in mapping.items():
                if not isinstance(as_term(const), Constant):
                    raise ModelError(
                        f"valuation images must be constants: {var!r} -> {const!r}"
                    )
        super().__init__(mapping)

    def extended(self, var: Variable, term: Term) -> "Valuation":
        term = as_term(term)
        if not isinstance(term, Constant):
            raise ModelError(f"valuation images must be constants: {term!r}")
        merged = dict(self._map)
        merged[var] = term
        return Valuation(merged)


def compatible(valuation: Substitution, theta: Substitution) -> bool:
    """Section 4 compatibility: ``σ(x_i) = σ(e_i)`` for all bindings of θ.

    For an unbound variable, σ acts as the identity (the paper's valuations
    are partial maps). Thus two distinct unbound variables are *not* equal
    under σ unless θ maps one to the other and σ leaves both alone — in which
    case σ(x) = x ≠ e = σ(e) whenever x ≠ e. This strictness is exactly what
    the cardinality constraints of Section 4 need: a valuation that embeds
    m+1 *distinct* rows must genuinely merge two of them to be compatible.
    """
    for var, term in theta.items():
        image_var = valuation.get(var, var)
        image_term = valuation.get(term, term)
        if image_var != image_term:
            return False
    return True


def match_atom(pattern: Atom, ground: Atom, seed: Optional[Substitution] = None) -> Optional[Substitution]:
    """Extend *seed* to a substitution σ with ``σ(pattern) == ground``.

    Returns ``None`` when no extension exists. *ground* must be a fact.
    This is the single-atom matching step underlying query evaluation and
    homomorphism search.
    """
    if pattern.relation != ground.relation or pattern.arity != ground.arity:
        return None
    bindings: Dict[Variable, Term] = dict(seed.items()) if seed else {}
    for pat_term, ground_term in zip(pattern.args, ground.args):
        if isinstance(pat_term, Constant):
            if pat_term != ground_term:
                return None
        else:
            bound = bindings.get(pat_term)
            if bound is None:
                bindings[pat_term] = ground_term
            elif bound != ground_term:
                return None
    return Substitution(bindings)


def unify_atoms(left: Atom, right: Atom) -> Optional[Substitution]:
    """Most general unifier of two atoms, or ``None``.

    Standard syntactic unification without occurs-check subtleties (terms are
    flat, so the occurs check is trivial). Used by query containment and by
    template construction when heads must equal selected facts.
    """
    if left.relation != right.relation or left.arity != right.arity:
        return None
    bindings: Dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for l_term, r_term in zip(left.args, right.args):
        l_res, r_res = resolve(l_term), resolve(r_term)
        if l_res == r_res:
            continue
        if isinstance(l_res, Variable):
            bindings[l_res] = r_res
        elif isinstance(r_res, Variable):
            bindings[r_res] = l_res
        else:
            return None

    flattened: Dict[Variable, Term] = {}
    for var in bindings:
        flattened[var] = resolve(var)
    return Substitution(flattened)
