"""Atoms and facts (Section 2.1).

An *atom* is ``R(e_1, ..., e_k)`` where ``R`` is a relation name and each
``e_i`` is a constant or a variable. A *fact* is an atom without variables.
Facts are simply ground atoms: :meth:`Atom.is_ground` discriminates, and
:func:`fact` is a convenience constructor that enforces groundness.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

from repro.exceptions import ModelError, NotGroundError
from repro.model.terms import (
    Constant,
    Term,
    Variable,
    as_term,
    term_sort_key,
)


class Atom:
    """An atom ``R(e_1, ..., e_k)`` over relation name ``relation``.

    Atoms are immutable and hashable. Arguments are coerced with
    :func:`repro.model.terms.as_term`, so plain Python values become
    constants:

    >>> Atom("Temperature", (438432, 1990, 7, Variable("v")))
    Atom('Temperature', (Constant(438432), Constant(1990), Constant(7), Variable('v')))
    """

    __slots__ = ("relation", "args", "_hash", "_ground", "_vars", "_consts")

    def __init__(self, relation: str, args: Iterable[Any] = ()):
        if not isinstance(relation, str) or not relation:
            raise ModelError(f"relation name must be a non-empty string: {relation!r}")
        self.relation = relation
        self.args: Tuple[Term, ...] = tuple(as_term(a) for a in args)
        self._hash = hash((relation, self.args))
        self._ground = all(isinstance(a, Constant) for a in self.args)
        self._vars: "frozenset | None" = None
        self._consts: "frozenset | None" = None

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    def is_ground(self) -> bool:
        """True when the atom contains no variables (i.e. it is a fact).

        Precomputed at construction; no per-call argument scan.
        """
        return self._ground

    def variables(self) -> frozenset:
        """The set of variables occurring in the atom (computed once)."""
        if self._vars is None:
            self._vars = frozenset(
                a for a in self.args if isinstance(a, Variable)
            )
        return self._vars

    def constants(self) -> frozenset:
        """The set of constants occurring in the atom (computed once)."""
        if self._consts is None:
            self._consts = frozenset(
                a for a in self.args if isinstance(a, Constant)
            )
        return self._consts

    def substitute(self, mapping) -> "Atom":
        """Apply a term mapping (dict or Substitution/Valuation) to the atom.

        Terms without an image are left unchanged, matching the paper's
        convention that valuations are partial maps extended with identity.
        Ground atoms are fixed points, so they return themselves unchanged.
        """
        if self._ground:
            return self
        getter = mapping.get if hasattr(mapping, "get") else mapping.__getitem__
        return Atom(self.relation, tuple(getter(a, a) for a in self.args))

    def rename_relation(self, relation: str) -> "Atom":
        """The same argument tuple under a different relation name."""
        return Atom(relation, self.args)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.relation == other.relation
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.relation}({inner})"

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        key_self = (self.relation, tuple(term_sort_key(a) for a in self.args))
        key_other = (other.relation, tuple(term_sort_key(a) for a in other.args))
        return key_self < key_other

    def __iter__(self) -> Iterator[Term]:
        return iter(self.args)


def fact(relation: str, *values: Any) -> Atom:
    """Build a fact (ground atom), raising if any argument is a variable.

    >>> fact("Station", 438432, 43.7, -79.4, "Canada").is_ground()
    True
    """
    atom = Atom(relation, values)
    if not atom.is_ground():
        raise NotGroundError(f"fact contains variables: {atom}")
    return atom


def atom(relation: str, *args: Any) -> Atom:
    """Build an atom; shorthand mirroring :func:`fact` for non-ground use."""
    return Atom(relation, args)
