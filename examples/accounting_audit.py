#!/usr/bin/env python3
"""The §2.2 auditing methodology end to end (Kaplan & Krishnan reference).

Two accounting systems each hold a noisy copy of a transaction ledger.
An auditor:

1. computes the sample size required for the target confidence,
2. samples records and verifies them against supporting documents,
3. declares a Clopper–Pearson lower bound on soundness and an FD-derived
   completeness bound (txn_id → account, amount; transaction count known),
4. hands the audited descriptors to the mediator, which checks consistency
   and reports per-record confidence — all without ever seeing the ledger.

Because this is a simulation, we *can* peek at the ledger afterwards and
verify the audit kept its promises.

Run:  python examples/accounting_audit.py
"""

import random
from fractions import Fraction

from repro.integration import Mediator
from repro.sources.quality import required_sample_size
from repro.workloads import accounting


def main() -> None:
    rng = random.Random(1998)  # the Kaplan & Krishnan vintage
    confidence_level = 0.95
    workload = accounting.generate(
        n_systems=2,
        n_transactions=150,
        loss_rate=0.12,
        error_rate=0.06,
        confidence=confidence_level,
        margin=0.05,
        rng=rng,
    )

    print(f"ledger: {len(workload.ledger)} entries "
          f"(universe of {workload.n_transactions} transactions)")
    print(f"audit design: {confidence_level:.0%} confidence, "
          f"sample size {required_sample_size(confidence_level, 0.05)}")

    print("\naudited systems:")
    for system in workload.systems:
        d = system.descriptor
        print(
            f"  {d.name}: holds {d.size()} entries; sampled "
            f"{system.sample_size}, {system.sample_correct} verified; "
            f"declared s >= {float(d.soundness_bound):.3f}, "
            f"c >= {float(d.completeness_bound):.3f}"
        )
        print(
            f"        (truth, normally unknowable: s = "
            f"{float(system.true_soundness):.3f}, "
            f"c = {float(system.true_completeness):.3f}; declaration "
            f"{'holds' if system.declared_holds() else 'VIOLATED'})"
        )

    mediator = Mediator([s.descriptor for s in workload.systems])
    result = mediator.check_consistency()
    print(f"\ncollection consistent: {result.consistent}")
    admitted = workload.collection.admits(workload.ledger)
    print(f"true ledger admitted as a possible world: {admitted}")

    # Which reported entries deserve belief? Rank a small slice.
    domain = sorted(
        {c.value for f in workload.ledger for c in f.args}
        | {c.value for s in workload.systems for f in s.descriptor.extension
           for c in f.args},
        key=lambda v: (type(v).__name__, repr(v)),
    )
    confidences = mediator.base_confidences(domain)
    ranked = sorted(confidences.items(), key=lambda kv: -kv[1])
    print("\nmost trustworthy reported entries:")
    for f, conf in ranked[:5]:
        in_ledger = "OK " if f in workload.ledger else "BAD"
        print(f"  [{in_ledger}] {f}  confidence {float(conf):.3f}")
    agreement = sum(
        1 for f, conf in ranked[:20] if f in workload.ledger
    )
    print(f"top-20 precision against the ledger: {agreement / 20:.2f}")


if __name__ == "__main__":
    main()
