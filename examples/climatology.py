#!/usr/bin/env python3
"""The paper's motivating scenario (§1.1): integrating climate sources.

A synthetic Global Historical Climatology Network: a `Station` directory and
per-country `Temperature` sources with selection views like

    V1(s,y,m,v) <- Temperature(s,y,m,v), Station(s,"C1"), After(y,1900)

Each source's extension is a perturbed copy of its intended content
(dropped rows → incompleteness, corrupted values → unsoundness), and each
declares its measured quality. The example shows:

1. auditing declared bounds against the (normally unknowable) ground truth,
2. deriving a source's completeness a priori from the functional dependency
   station,year,month → value (the paper's §2.2 argument),
3. ordering source accesses by declared completeness (the Florescu-style
   planner baseline from related work).

Run:  python examples/climatology.py
"""

import random

from repro.integration import Mediator, plan_prefix
from repro.queries import parse_rule
from repro.sources.quality import completeness_from_fd
from repro.workloads import climatology


def main() -> None:
    rng = random.Random(2001)
    workload = climatology.generate(
        n_countries=2,
        stations_per_country=3,
        years=(1989, 1990, 1991),
        months=(1, 4, 7, 10),
        cutoff_years={"C2": 1989},
        drop_rate=0.2,
        corrupt_rate=0.1,
        rng=rng,
    )
    mediator = Mediator(list(workload.collection))

    print(f"ground truth: {len(workload.ground_truth)} facts "
          f"({workload.station_count()} stations, years {workload.years})")

    # 1. Audit: measured quality vs declared bounds (ground truth known here).
    print("\nsource audit (measured vs declared):")
    report = mediator.audit(workload.ground_truth)
    for name, row in report.items():
        print(
            f"  {name}: c = {float(row['completeness']):.3f} "
            f"(declared ≥ {float(row['declared_completeness']):.3f}), "
            f"s = {float(row['soundness']):.3f} "
            f"(declared ≥ {float(row['declared_soundness']):.3f})"
        )
    assert workload.collection.admits(workload.ground_truth)
    print("  -> the ground truth is a possible world: declarations honest")

    # 2. FD-based completeness: |φ(D)| is computable without seeing D.
    s1 = workload.collection.by_name("S1")
    intended_size = workload.fd_intended_size("C1", min(workload.years) - 1)
    sound_count = round(float(s1.soundness_bound) * s1.size())
    fd_bound = completeness_from_fd(sound_count, [intended_size])
    print(f"\nFD argument for S1: intended |φ(D)| = {intended_size} "
          f"(stations × years × months)")
    print(f"  a-priori completeness bound: {float(fd_bound):.3f} "
          f"(measured: {float(s1.completeness(workload.ground_truth)):.3f})")

    # 3. Planner: which sources to contact first for a temperature query?
    query = parse_rule("ans(s, y, m, v) <- Temperature(s, y, m, v)")
    chosen, coverage = plan_prefix(
        mediator.collection, query, target_coverage="0.9"
    )
    print("\naccess plan for a global temperature query "
          f"(target coverage 0.9):")
    for source in chosen:
        print(f"  contact {source.name} (declared c ≥ "
              f"{float(source.completeness_bound):.3f})")
    print(f"  estimated combined coverage: {float(coverage):.3f}")


if __name__ == "__main__":
    main()
