#!/usr/bin/env python3
"""The paper's closing application (§6): which cached objects are still live?

An origin site serves a set of objects; several caches/mirrors hold stale,
partial copies. Each cache is an identity view over `Live(object)` with
measured completeness (fetch coverage) and soundness (staleness). The §5.1
confidence machinery then ranks every object by the probability it is still
live, given only the caches and their quality claims — and because the
generator knows the true origin, we can score the ranking (precision@k).

Run:  python examples/web_caches.py
"""

import random

from repro.confidence import covered_fact_confidences, certain_facts
from repro.consistency import check_identity
from repro.workloads import caches


def main() -> None:
    rng = random.Random(42)
    fleet = caches.generate(
        n_objects=15,
        n_retired=8,
        n_caches=5,
        miss_rate=0.25,
        stale_rate=0.2,
        rng=rng,
    )
    live = fleet.live_objects()
    print(f"origin: {len(live)} live objects; universe of {len(fleet.domain)}")

    result = check_identity(fleet.collection)
    print(f"cache fleet consistent: {result.consistent}")

    print("\nper-cache declared quality:")
    for cache in fleet.collection:
        print(
            f"  {cache.name}: holds {cache.size()} objects, "
            f"c ≥ {float(cache.completeness_bound):.3f}, "
            f"s ≥ {float(cache.soundness_bound):.3f}"
        )

    confidences = covered_fact_confidences(fleet.collection, fleet.domain)
    ranked = sorted(confidences.items(), key=lambda kv: -kv[1])

    print("\ntop objects by liveness confidence:")
    for f, confidence in ranked[:8]:
        obj = f.args[0].value
        marker = "LIVE " if obj in live else "STALE"
        print(f"  [{marker}] {obj}: {float(confidence):.3f}")

    certain = certain_facts(confidences)
    print(f"\nobjects certainly live (confidence 1): "
          f"{sorted(f.args[0].value for f in certain)}")

    for k in (5, 10, 15):
        precision = caches.ranking_quality(
            [f.args[0].value for f, _ in ranked], live, k
        )
        print(f"precision@{k}: {float(precision):.3f}")


if __name__ == "__main__":
    main()
