#!/usr/bin/env python3
"""Consistency auditing and the Theorem 3.2 reduction in action.

Part 1 — a data steward receives quality claims from providers and must
decide whether they can all be true simultaneously (the CONSISTENCY problem,
NP-complete per Theorem 3.2). We show a consistent fleet, then a provider
whose inflated claim breaks the collection, and how `violations` pinpoints
the culprit.

Part 2 — the reduction as a solver: a HITTING SET instance is translated to
HS* (Lemma 3.3) and then to a source collection (Theorem 3.2); deciding the
collection's consistency solves the original covering problem.

Run:  python examples/consistency_audit.py
"""

from repro import SourceDescriptor, check_consistency, fact, identity_view
from repro.sources import SourceCollection
from repro.reductions import (
    HittingSetInstance,
    hs_to_hs_star,
    map_solution_back,
    solve_hs_star_via_consistency,
)


def part1_auditing() -> None:
    print("=== Part 1: auditing provider claims ===")
    honest = SourceCollection(
        [
            SourceDescriptor(
                identity_view("Vendor1", "Customer", 1),
                [fact("Vendor1", "alice"), fact("Vendor1", "bob")],
                "0.6", "0.9", name="Vendor1",
            ),
            SourceDescriptor(
                identity_view("Vendor2", "Customer", 1),
                [fact("Vendor2", "bob"), fact("Vendor2", "carol")],
                "0.5", "0.5", name="Vendor2",
            ),
        ]
    )
    result = check_consistency(honest)
    print(f"honest fleet consistent: {result.consistent}")
    print(f"  witness world: {sorted(map(str, result.witness))}")

    # Vendor3 claims to be exact — but holds a record nobody else can admit
    # alongside Vendor1's near-exact claim over a different customer set.
    broken = honest.extended(
        SourceDescriptor(
            identity_view("Vendor3", "Customer", 1),
            [fact("Vendor3", "mallory")],
            1, 1, name="Vendor3",
        ),
        SourceDescriptor(
            identity_view("Vendor4", "Customer", 1),
            [fact("Vendor4", "alice")],
            1, 1, name="Vendor4",
        ),
    )
    result = check_consistency(broken)
    print(f"\nwith two conflicting exact vendors consistent: {result.consistent}")
    if not result.consistent:
        world = result.witness  # None — demonstrate violations instead
        from repro.model import GlobalDatabase

        candidate = GlobalDatabase([fact("Customer", "mallory")])
        print("  e.g. the world {Customer(mallory)} violates:")
        for problem in broken.violations(candidate):
            print(f"    - {problem}")


def part2_reduction_solver() -> None:
    print("\n=== Part 2: hitting set via CONSISTENCY (Theorem 3.2) ===")
    # Committees must each contain a chosen delegate; can 2 delegates cover?
    committees = [
        {"ana", "ben"},
        {"ben", "cho"},
        {"cho", "dee"},
    ]
    instance = HittingSetInstance(committees, 2)
    star, fresh = hs_to_hs_star(instance)           # Lemma 3.3
    solution = solve_hs_star_via_consistency(star)  # Theorem 3.2
    print(f"committees: {[sorted(c) for c in committees]}, budget K = 2")
    if solution is None:
        print("no delegate cover of size 2 exists")
    else:
        delegates = sorted(map_solution_back(solution, fresh))
        print(f"delegate cover found via source consistency: {delegates}")

    tight = HittingSetInstance([{"a"}, {"b"}, {"c"}], 2)
    tight_star, _ = hs_to_hs_star(tight)
    print(
        "three disjoint singletons with K = 2 solvable: "
        f"{solve_hs_star_via_consistency(tight_star) is not None}"
    )


if __name__ == "__main__":
    part1_auditing()
    part2_reduction_solver()
