#!/usr/bin/env python3
"""Quickstart: the paper's Example 5.1, end to end.

Two sources each hold two facts about a unary relation R and declare 50%
completeness and 50% soundness. We check the collection is consistent,
enumerate its possible worlds, and compute the exact confidence of every
fact — reproducing the qualitative picture of Example 5.1: the fact claimed
by *both* sources (R(b)) is almost certain, facts claimed by one source sit
near 1/2, and unclaimed domain elements are near 0.

Run:  python examples/quickstart.py
"""

from repro import Mediator, SourceDescriptor, fact, identity_view
from repro.algebra import RelationScan
from repro.confidence import possible_worlds


def main() -> None:
    # 1. Describe the sources: ⟨view, extension, completeness, soundness⟩.
    mediator = Mediator()
    mediator.register(
        SourceDescriptor(
            identity_view("V1", "R", 1),
            [fact("V1", "a"), fact("V1", "b")],
            completeness_bound="1/2",
            soundness_bound="1/2",
            name="S1",
        )
    )
    mediator.register(
        SourceDescriptor(
            identity_view("V2", "R", 1),
            [fact("V2", "b"), fact("V2", "c")],
            completeness_bound="1/2",
            soundness_bound="1/2",
            name="S2",
        )
    )

    # 2. Is any global database compatible with all these claims?
    result = mediator.check_consistency()
    print(f"consistent: {result.consistent}  (method: {result.method})")
    print(f"smallest witness: {sorted(map(str, result.witness))}")

    # 3. Enumerate the possible worlds over a finite domain.
    m = 5
    domain = ["a", "b", "c"] + [f"d{i}" for i in range(1, m + 1)]
    worlds = list(possible_worlds(mediator.collection, domain))
    print(f"\n|poss(S)| over dom of size {len(domain)}: {len(worlds)}")

    # 4. Exact confidence of every claimed fact (Section 5.1).
    print("\nbase-fact confidences:")
    for f, confidence in sorted(
        mediator.base_confidences(domain).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {f}: {confidence}  (~{float(confidence):.3f})")

    # 5. Query answering with certain/possible answers and ranked confidence.
    answer = mediator.query(RelationScan("R", 1), domain)
    print(f"\ncertain answer: {sorted(map(repr, answer.certain))}")
    print("ranked possible answer:")
    for row, confidence in answer.ranked()[:5]:
        values = tuple(c.value for c in row)
        print(f"  R{values}: {confidence}  (~{float(confidence):.3f})")


if __name__ == "__main__":
    main()
