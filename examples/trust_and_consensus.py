#!/usr/bin/env python3
"""Detecting untrustworthy sources (the paper's §6 consensus direction).

Five vendors report customer lists with exactness claims; one vendor's list
disagrees with everyone else's. The conflict analysis machinery:

1. finds the minimal conflicts (which coalitions of claims are jointly
   impossible),
2. scores each vendor's trust (membership in the largest consistent
   coalitions) and blame (participation in conflicts),
3. proposes the minimum repair (whom to drop) via hitting sets over the
   conflicts — the Theorem 3.2 combinatorics running in reverse,
4. and, more charitably, computes the smallest discount of the culprit's
   declared bounds that would make everyone's claims jointly satisfiable.

Run:  python examples/trust_and_consensus.py
"""

from repro import SourceDescriptor, fact, identity_view
from repro.sources import SourceCollection
from repro.consensus import (
    blame_scores,
    consensus_trust_scores,
    minimal_inconsistent_subcollections,
    most_fixable_source,
    rank_by_trust,
    repair_via_hitting_set,
    uniform_relaxation,
)


def vendor(name: str, customers, c=1, s=1) -> SourceDescriptor:
    return SourceDescriptor(
        identity_view(f"V{name}", "Customer", 1),
        [fact(f"V{name}", x) for x in customers],
        c,
        s,
        name=name,
    )


def main() -> None:
    majority = ["alice", "bob", "carol"]
    collection = SourceCollection(
        [
            vendor("north", majority),
            vendor("south", majority),
            vendor("east", majority),
            vendor("west", majority + ["dave"]),          # slightly off
            vendor("rogue", ["mallory", "trudy"]),        # wildly off
        ]
    )

    print("minimal conflicts:")
    for conflict in minimal_inconsistent_subcollections(collection):
        print(f"  {{{', '.join(sorted(conflict))}}}")

    print("\nscores (consensus trust | blame):")
    consensus = consensus_trust_scores(collection)
    blame = blame_scores(collection)
    for name in rank_by_trust(collection):
        print(f"  {name:>6}: {float(consensus[name]):.2f} | {float(blame[name]):.2f}")

    repair, conflicts = repair_via_hitting_set(collection)
    print(f"\nminimum repair: drop {{{', '.join(sorted(repair))}}} "
          f"(hits all {len(conflicts)} conflicts)")

    fix = most_fixable_source(collection)
    if fix is not None:
        name, discount = fix
        print(f"cheapest single-source fix: discount {name}'s bounds by "
              f"~{float(discount):.2f}")

    discount, relaxed = uniform_relaxation(collection)
    print(f"uniform discount restoring consistency: ~{float(discount):.2f}")
    from repro.consistency import check_consistency

    assert check_consistency(relaxed).consistent
    print("relaxed collection verified consistent")


if __name__ == "__main__":
    main()
