#!/usr/bin/env python3
"""Probabilistic analytics beyond per-tuple confidence (§5, extended).

Using Example 5.1's two half-trusted sources, this walkthrough shows the
richer questions the counting machinery answers exactly:

* joint and conditional confidence, and the covariance that Definition
  5.1's calculus ignores;
* the full distribution of the database size |D| and its expectation;
* expected answer cardinalities (exact by linearity of expectation);
* where the Definition 5.1 calculus deviates — and the exact
  inclusion–exclusion calculus that repairs it.

Run:  python examples/probabilistic_analytics.py
"""

from fractions import Fraction

from repro import BlockCounter, IdentityInstance, SourceDescriptor, fact, identity_view
from repro.model import Constant
from repro.sources import SourceCollection
from repro.algebra import Product, Projection, RelationScan
from repro.confidence import (
    ExactCalculus,
    answer_query,
    base_confidences_from_facts,
    covered_fact_confidences,
    expected_answer_cardinality,
    propagate,
)


def main() -> None:
    collection = SourceCollection(
        [
            SourceDescriptor(
                identity_view("V1", "R", 1),
                [fact("V1", "a"), fact("V1", "b")], "1/2", "1/2", name="S1",
            ),
            SourceDescriptor(
                identity_view("V2", "R", 1),
                [fact("V2", "b"), fact("V2", "c")], "1/2", "1/2", name="S2",
            ),
        ]
    )
    domain = ["a", "b", "c", "d1", "d2"]
    counter = BlockCounter(IdentityInstance(collection, domain))
    a, b = fact("R", "a"), fact("R", "b")

    print("=== joint structure ===")
    print(f"P(a) = {counter.confidence(a)},  P(b) = {counter.confidence(b)}")
    print(f"P(a and b) = {counter.joint_confidence([a, b])}")
    print(f"P(a | b)   = {counter.conditional_confidence(a, [b])}")
    print(f"cov(a, b)  = {counter.covariance(a, b)}  "
          f"(negative: adding a makes the world bigger, squeezing b's slack)")

    print("\n=== database size ===")
    for size, count in sorted(counter.world_size_distribution().items()):
        print(f"  |D| = {size}: {count} worlds")
    print(f"E[|D|] = {counter.expected_world_size()}")

    print("\n=== expected answers ===")
    scan = RelationScan("R", 1)
    print(f"E[|R|]     = {expected_answer_cardinality(scan, collection, domain)}")
    print(f"E[|R x R|] = "
          f"{expected_answer_cardinality(Product(scan, scan), collection, domain)}")

    print("\n=== Definition 5.1 vs exact calculus ===")
    merge_all = Projection([Constant("nonempty")], scan)
    probe = (Constant("nonempty"),)
    base = base_confidences_from_facts(
        covered_fact_confidences(collection, domain)
    )
    via_def51 = propagate(merge_all, base)[probe]
    calculus = ExactCalculus(IdentityInstance(collection, domain))
    via_exact = calculus.confidence(merge_all, probe)
    via_worlds = answer_query(merge_all, collection, domain).confidences[probe]
    print(f"P(R nonempty): Def 5.1 calculus = {float(via_def51):.4f} "
          f"(assumes independence)")
    print(f"               exact calculus   = {via_exact}")
    print(f"               world counting   = {via_worlds}")
    assert via_exact == via_worlds


if __name__ == "__main__":
    main()
