#!/usr/bin/env python3
"""Answering queries using views: the data-integration workhorse (§1.2).

A user asks a query over the *global* schema; the system only has the
sources. The rewriting pipeline: find plans over the view relations whose
expansions are contained in the query (verified with the Chandra–Merlin
containment test), execute them against the sources' actual extensions, and
annotate each answer with its provenance and a support score.

Run:  python examples/query_rewriting.py
"""

import random

from repro.model import GlobalDatabase, fact
from repro.queries import evaluate, parse_rule
from repro.sources import SourceCollection, SourceDescriptor
from repro.rewriting import execute_all, find_rewritings
from repro.workloads.perturb import perturb_extension, slack_bound


def main() -> None:
    # Global schema: Employee(name, dept), Dept(dept, site).
    truth = GlobalDatabase(
        [
            fact("Employee", "ana", "db"),
            fact("Employee", "ben", "db"),
            fact("Employee", "cho", "ml"),
            fact("Dept", "db", "toronto"),
            fact("Dept", "ml", "zurich"),
        ]
    )

    # Sources expose views, not base tables.
    v_emp = parse_rule("VEmp(n, d) <- Employee(n, d)")
    v_dept = parse_rule("VDept(d, s) <- Dept(d, s)")
    v_roster = parse_rule("VRoster(n, s) <- Employee(n, d), Dept(d, s)")

    rng = random.Random(11)
    sources = []
    for view, name, drop in ((v_emp, "HR", 0.0), (v_dept, "Facilities", 0.0),
                             (v_roster, "Directory", 0.34)):
        intended = view.apply(truth)
        noisy = perturb_extension(intended, drop, 0.0, ["x"], rng)
        sources.append(
            SourceDescriptor(
                view, noisy.extension,
                slack_bound(noisy.completeness), slack_bound(noisy.soundness),
                name=name,
            )
        )
    collection = SourceCollection(sources)

    query = parse_rule("ans(n, s) <- Employee(n, d), Dept(d, s)")
    print(f"query: {query}")

    plans = find_rewritings(query, [v_emp, v_dept, v_roster])
    print(f"\n{len(plans)} verified sound plan(s):")
    for plan in plans:
        tag = "EQUIVALENT" if plan.equivalent else "sound"
        print(f"  [{tag}] {plan.plan}")

    answers = execute_all(plans, collection)
    true_answer = evaluate(query, truth)
    print("\nanswers assembled from the sources:")
    for answer in answers:
        verdict = "true " if answer.fact in true_answer else "FALSE"
        print(
            f"  [{verdict}] {answer.fact}  via {sorted(answer.sources)} "
            f"(support {float(answer.support):.2f})"
        )
    missed = true_answer - {a.fact for a in answers}
    print(f"\ntrue answers missed (source incompleteness): "
          f"{sorted(map(str, missed)) if missed else 'none'}")


if __name__ == "__main__":
    main()
